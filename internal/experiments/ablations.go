package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ghostdb/internal/bloom"
	"ghostdb/internal/exec"
	"ghostdb/internal/metrics"
	"ghostdb/internal/store"
)

// AblationMergeReduction measures query Q under Pre-Filtering (the most
// Merge-intensive strategy) as the secure RAM budget shrinks: smaller
// budgets force more sublist-reduction passes (§3.4, alternative 1).
func (l *Lab) AblationMergeReduction() (*Figure, error) {
	fig := &Figure{Name: "ablation-merge", Title: "Merge reduction under shrinking RAM",
		XLabel: "secure RAM (KB)"}
	budgets := []int{16 << 10, 32 << 10, 64 << 10, 128 << 10}
	sql := SynthQ(0.2, 1, false)
	for _, b := range budgets {
		db, err := l.SynthDBWithRAM(b)
		if err != nil {
			return nil, err
		}
		p := runPoint(db, sql, exec.StratPre, exec.ProjectBloom, "Pre-Filter", float64(b)/1024)
		fig.Points = append(fig.Points, p)
	}
	return fig, nil
}

// AblationBloomRatio measures the false-positive rate as the m/n ratio
// degrades from 10 to 2 bits per element — the "smooth degradation" §3.4
// relies on when the id list outgrows the RAM.
func (l *Lab) AblationBloomRatio() (*Figure, error) {
	fig := &Figure{Name: "ablation-bloom", Title: "Bloom accuracy vs bits per element",
		XLabel: "m/n (bits per element)"}
	const n = 50000
	const probes = 100000
	rng := rand.New(rand.NewSource(99))
	for _, ratio := range []float64{2, 3, 4, 6, 8, 10} {
		k := int(ratio * 0.7)
		if k < 1 {
			k = 1
		}
		f := bloom.NewWithRatio(n, ratio, k)
		for i := uint32(0); i < n; i++ {
			f.Add(i)
		}
		fp := 0
		for i := 0; i < probes; i++ {
			if f.MayContain(uint32(n) + uint32(rng.Intn(1<<30))) {
				fp++
			}
		}
		rate := float64(fp) / probes
		fig.Points = append(fig.Points, Point{
			Series: "measured-FPR",
			X:      ratio,
			// Encode the rate as microseconds-per-unit for uniform
			// Point shape; read it back with RateOf.
			Time: time.Duration(rate * float64(time.Second)),
			Note: fmt.Sprintf("fpr=%.4f k=%d", rate, k),
		})
	}
	return fig, nil
}

// RateOf decodes the value packed into an AblationBloomRatio point.
func RateOf(p Point) float64 { return p.Time.Seconds() }

// AblationClimbingVsCascade compares the climbing index (one lookup
// delivering anchor-level sublists directly) with the cascading
// alternative the paper rejects in §3.2: look up the selection index,
// then follow id indexes level by level, unioning as you go.
func (l *Lab) AblationClimbingVsCascade() (*Figure, error) {
	db, err := l.SynthDB()
	if err != nil {
		return nil, err
	}
	fig := &Figure{Name: "ablation-climb", Title: "Climbing index vs cascading lookups",
		XLabel: "hidden selectivity"}
	sch := db.Sch
	t12, _ := sch.Lookup("T12")
	t1, _ := sch.Lookup("T1")
	t0, _ := sch.Lookup("T0")
	_, h2, _ := t12.Column("h2")
	ci, ok := db.Cat.AttrIndex(t12.Index, h2)
	if !ok {
		return nil, fmt.Errorf("no index on T12.h2")
	}
	id12, _ := db.Cat.IDIndex(t12.Index)
	id1, _ := db.Cat.IDIndex(t1.Index)

	for _, sel := range []float64{0.01, 0.05, 0.1, 0.2} {
		hi := []byte(fmt.Sprintf("%010d", int(sel*1000)))
		// (a) Climbing: direct sublists at the T0 level.
		db.Dev.ResetCounters()
		slot0, _ := ci.LevelOf(t0.Index)
		runs, err := ci.RunsRange(nil, hi, true, false, slot0)
		if err != nil {
			return nil, err
		}
		climbIDs, err := readRuns(ci.Lists(), runs)
		if err != nil {
			return nil, err
		}
		climbTime := db.Options().Model.IOTime(sampleOf(db))

		// (b) Cascade: T12 self ids -> T1 ids -> T0 ids via id indexes.
		db.Dev.ResetCounters()
		slotSelf, _ := ci.LevelOf(t12.Index)
		selfRuns, err := ci.RunsRange(nil, hi, true, false, slotSelf)
		if err != nil {
			return nil, err
		}
		t12ids, err := readRuns(ci.Lists(), selfRuns)
		if err != nil {
			return nil, err
		}
		slot1, _ := id12.LevelOf(t1.Index)
		t1set := map[uint32]bool{}
		for id := range t12ids {
			rs, err := id12.RunsForID(id, slot1)
			if err != nil {
				return nil, err
			}
			ids, err := readRuns(id12.Lists(), rs)
			if err != nil {
				return nil, err
			}
			for x := range ids {
				t1set[x] = true
			}
		}
		slotT0, _ := id1.LevelOf(t0.Index)
		t0set := map[uint32]bool{}
		for id := range t1set {
			rs, err := id1.RunsForID(id, slotT0)
			if err != nil {
				return nil, err
			}
			ids, err := readRuns(id1.Lists(), rs)
			if err != nil {
				return nil, err
			}
			for x := range ids {
				t0set[x] = true
			}
		}
		cascadeTime := db.Options().Model.IOTime(sampleOf(db))
		if len(t0set) != len(climbIDs) {
			// The mismatched cardinalities are hidden-derived: naming them
			// in the error would put data-dependent counts in a string the
			// untrusted side can observe (trustboundary).
			return nil, fmt.Errorf("cascade disagreement: climbing and cascading selections returned different id counts")
		}
		fig.Points = append(fig.Points,
			Point{Series: "climbing", X: sel, Time: climbTime, IOTime: climbTime},
			Point{Series: "cascading", X: sel, Time: cascadeTime, IOTime: cascadeTime})
	}
	db.Dev.ResetCounters()
	return fig, nil
}

func readRuns(seg *store.ListSegment, runs []store.Run) (map[uint32]bool, error) {
	out := map[uint32]bool{}
	for _, r := range runs {
		ids, err := seg.ReadAll(r)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			out[id] = true
		}
	}
	return out, nil
}

func sampleOf(db *exec.DB) metrics.Sample {
	return metrics.Sample{Flash: db.Dev.Counters()}
}
