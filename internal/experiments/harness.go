package experiments

import (
	"context"
	"sort"
	"sync"
	"time"

	"ghostdb/internal/exec"
)

// This file is the shared measurement harness of every sweep
// (concurrency, planner, cache, sharding): a fixed-size pool of client
// goroutines draining a query list through one engine, wall-clock and
// simulated-latency accounting, and percentile extraction. The sweeps
// differ only in which engines they build and which extra counters they
// derive — that stays in each sweep; the worker-pool boilerplate lives
// here once.

// runStats is the common yield of one workload run. Latencies are
// sorted, successful queries only.
type runStats struct {
	wall      time.Duration
	latencies []time.Duration
	simTotal  time.Duration
	errs      int
	firstErr  error
}

// p50ms / p95ms read percentiles off the sorted latency slice, in
// milliseconds (0 when empty).
func (r runStats) p50ms() float64 {
	if len(r.latencies) == 0 {
		return 0
	}
	return float64(r.latencies[len(r.latencies)/2].Microseconds()) / 1000
}

func (r runStats) p95ms() float64 {
	if len(r.latencies) == 0 {
		return 0
	}
	return float64(r.latencies[len(r.latencies)*95/100].Microseconds()) / 1000
}

func (r runStats) qps() float64 {
	if r.wall <= 0 {
		return 0
	}
	return float64(len(r.latencies)+r.errs) / r.wall.Seconds()
}

// runWorkload pushes the query list through db with `workers` client
// goroutines under one per-query configuration. Each successful result
// is also handed to onResult (called under the harness lock; may be
// nil) for sweep-specific accounting — answer verification, floor
// tracking, hit counting.
func runWorkload(db *exec.DB, workers int, queries []string, cfg exec.QueryConfig,
	onResult func(sql string, res *exec.Result)) runStats {
	if workers < 1 {
		workers = 1
	}
	var (
		mu  sync.Mutex
		out runStats
	)
	next := make(chan string)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sql := range next {
				res, err := db.RunCtx(context.Background(), sql, cfg)
				mu.Lock()
				if err != nil {
					out.errs++
					if out.firstErr == nil {
						out.firstErr = err
					}
				} else {
					out.latencies = append(out.latencies, res.Stats.SimTime)
					out.simTotal += res.Stats.SimTime
					if onResult != nil {
						onResult(sql, res)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, sql := range queries {
		next <- sql
	}
	close(next)
	wg.Wait()
	out.wall = time.Since(start)
	sort.Slice(out.latencies, func(i, j int) bool { return out.latencies[i] < out.latencies[j] })
	return out
}
