package experiments

import (
	"context"
	"sync"
	"time"

	"ghostdb/internal/exec"
	"ghostdb/internal/obs"
)

// This file is the shared measurement harness of every sweep
// (concurrency, planner, cache, sharding): a fixed-size pool of client
// goroutines draining a query list through one engine, wall-clock and
// simulated-latency accounting, and percentile extraction. The sweeps
// differ only in which engines they build and which extra counters they
// derive — that stays in each sweep; the worker-pool boilerplate lives
// here once.

// runStats is the common yield of one workload run: successful queries
// only, latencies accumulated into the same exponential bucket layout
// the live /metrics endpoint exposes (obs.TimeBuckets).
type runStats struct {
	wall     time.Duration
	served   int
	hist     *obs.Histogram
	simTotal time.Duration
	errs     int
	firstErr error
}

// p50ms / p95ms / p99ms read quantiles off the bucketed latency
// distribution, in milliseconds (0 when empty). Because the buckets are
// exactly ghostdb_query_sim_seconds's, a Prometheus histogram_quantile
// over the live server reports the same numbers as the bench harness.
func (r runStats) p50ms() float64 { return r.quantileMs(0.50) }

func (r runStats) p95ms() float64 { return r.quantileMs(0.95) }

func (r runStats) p99ms() float64 { return r.quantileMs(0.99) }

func (r runStats) quantileMs(q float64) float64 {
	if r.hist == nil || r.hist.Count() == 0 {
		return 0
	}
	return r.hist.Quantile(q) * 1000
}

func (r runStats) qps() float64 {
	if r.wall <= 0 {
		return 0
	}
	return float64(r.served+r.errs) / r.wall.Seconds()
}

// runWorkload pushes the query list through db with `workers` client
// goroutines under one per-query configuration. Each successful result
// is also handed to onResult (called under the harness lock; may be
// nil) for sweep-specific accounting — answer verification, floor
// tracking, hit counting.
func runWorkload(db *exec.DB, workers int, queries []string, cfg exec.QueryConfig,
	onResult func(sql string, res *exec.Result)) runStats {
	if workers < 1 {
		workers = 1
	}
	var (
		mu  sync.Mutex
		out = runStats{hist: obs.NewHistogram(obs.TimeBuckets())}
	)
	next := make(chan string)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sql := range next {
				res, err := db.RunCtx(context.Background(), sql, cfg)
				mu.Lock()
				if err != nil {
					out.errs++
					if out.firstErr == nil {
						out.firstErr = err
					}
				} else {
					out.served++
					out.hist.Observe(res.Stats.SimTime.Seconds())
					out.simTotal += res.Stats.SimTime
					if onResult != nil {
						onResult(sql, res)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, sql := range queries {
		next <- sql
	}
	close(next)
	wg.Wait()
	out.wall = time.Since(start)
	return out
}
