// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): the index storage comparison (Fig 7), the filtering
// strategy sweeps (Figs 8–11), the projection algorithms (Figs 12–13),
// the communication bottleneck (Fig 14) and the per-operator cost
// decompositions on the synthetic and medical datasets (Figs 15–16), plus
// ablations for the design choices called out in DESIGN.md.
//
// Experiments run at a configurable ScaleFactor; the paper's absolute
// sizes (10M-tuple root table) correspond to SF = 1.0. Shapes — which
// strategy wins, where the crossovers fall — are scale-stable because
// every cost term is linear in the data touched.
package experiments

import (
	"context"
	"fmt"
	"time"

	"ghostdb/internal/datagen"
	"ghostdb/internal/exec"
	"ghostdb/internal/flash"
)

// SVGrid is the visible-selectivity sweep used throughout §6 (the x-axis
// of Figures 8–13, log scale).
var SVGrid = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}

// SH is the fixed hidden selectivity of query Q (§6.4).
const SH = 0.1

// Point is one measured sample of a figure.
type Point struct {
	Series    string
	X         float64
	Time      time.Duration
	IOTime    time.Duration
	CommTime  time.Duration
	Breakdown map[string]time.Duration
	Skipped   bool // e.g. Post-Filter beyond sV=0.5
	Note      string
}

// Figure is a regenerated table or figure.
type Figure struct {
	Name   string
	Title  string
	XLabel string
	Points []Point
}

// Lab caches the generated datasets and loaded databases between
// experiments.
type Lab struct {
	SF   float64
	Seed int64

	synthDS   *datagen.Dataset
	medicalDS *datagen.Dataset
	forestDS  map[int]*datagen.Dataset
	synth     *exec.DB
	medical   *exec.DB
}

// NewLab creates a lab at the given scale factor.
func NewLab(sf float64, seed int64) *Lab {
	if sf <= 0 {
		sf = 0.01
	}
	return &Lab{SF: sf, Seed: seed}
}

// flashFor sizes the device to the scale factor (lazily allocated, so a
// generous bound is fine).
func flashFor(sf float64) flash.Params {
	p := flash.DefaultParams()
	blocks := int(65536 * sf * 4)
	if blocks < 2048 {
		blocks = 2048
	}
	if blocks > 1<<18 {
		blocks = 1 << 18
	}
	p.Blocks = blocks
	return p
}

// SynthDataset returns the generated synthetic dataset (built once).
func (l *Lab) SynthDataset() (*datagen.Dataset, error) {
	if l.synthDS == nil {
		ds, err := datagen.Synthetic(l.SF, l.Seed)
		if err != nil {
			return nil, err
		}
		l.synthDS = ds
	}
	return l.synthDS, nil
}

// MedicalDataset returns the generated medical dataset (built once).
func (l *Lab) MedicalDataset() (*datagen.Dataset, error) {
	if l.medicalDS == nil {
		ds, err := datagen.Medical(l.SF, l.Seed+1)
		if err != nil {
			return nil, err
		}
		l.medicalDS = ds
	}
	return l.medicalDS, nil
}

// SynthDB returns the loaded synthetic database (built once).
func (l *Lab) SynthDB() (*exec.DB, error) {
	if l.synth != nil {
		return l.synth, nil
	}
	ds, err := l.SynthDataset()
	if err != nil {
		return nil, err
	}
	db, err := ds.NewDB(exec.Options{FlashParams: flashFor(l.SF)})
	if err != nil {
		return nil, err
	}
	l.synth = db
	return db, nil
}

// SynthDBWithRAM builds a fresh synthetic database with a custom secure
// RAM budget (not cached; used by the RAM ablation).
func (l *Lab) SynthDBWithRAM(budget int) (*exec.DB, error) {
	ds, err := l.SynthDataset()
	if err != nil {
		return nil, err
	}
	return ds.NewDB(exec.Options{FlashParams: flashFor(l.SF), RAMBudget: budget})
}

// MedicalDB returns the loaded medical database (built once).
func (l *Lab) MedicalDB() (*exec.DB, error) {
	if l.medical != nil {
		return l.medical, nil
	}
	ds, err := l.MedicalDataset()
	if err != nil {
		return nil, err
	}
	db, err := ds.NewDB(exec.Options{FlashParams: flashFor(l.SF)})
	if err != nil {
		return nil, err
	}
	l.medical = db
	return db, nil
}

// SynthQ renders query Q of §6.4: a visible selection on T1 (selectivity
// sv), a hidden selection on T12 (selectivity SH) and joins up to T0,
// projecting nProj visible attributes of T1 (plus the ids) and, when
// hidProj is set, a hidden attribute of T1 (the Figures 12–13 variant).
func SynthQ(sv float64, nProj int, hidProj bool) string {
	proj := "T0.id, T1.id, T12.id"
	for i := 1; i <= nProj && i <= 3; i++ {
		proj += fmt.Sprintf(", T1.v%d", i)
	}
	if hidProj {
		proj += ", T1.h1"
	}
	return fmt.Sprintf(`SELECT %s FROM T0, T1, T12 `+
		`WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id `+
		`AND T1.v1 < '%s' AND T12.h2 < '%s'`,
		proj, datagen.SelValue(sv), datagen.SelValue(SH))
}

// SynthQNoCross renders the Figure 10 variant: the hidden selection sits
// on T2, outside T1's subtree, so the Cross optimization cannot apply to
// the visible selection on T1.
func SynthQNoCross(sv float64) string {
	return fmt.Sprintf(`SELECT T0.id, T1.id, T2.id, T1.v1 FROM T0, T1, T2 `+
		`WHERE T0.fk1 = T1.id AND T0.fk2 = T2.id `+
		`AND T1.v1 < '%s' AND T2.h2 < '%s'`,
		datagen.SelValue(sv), datagen.SelValue(SH))
}

// MedicalQ renders query Q translated to the medical schema (§6.7):
// T0 → Measurements, T1 → Patients, T12 → Doctors.
func MedicalQ(sv float64) string {
	return fmt.Sprintf(`SELECT Measurements.id, Patients.id, Doctors.id, Patients.firstname `+
		`FROM Measurements, Patients, Doctors `+
		`WHERE Measurements.patient_id = Patients.id AND Patients.doctor_id = Doctors.id `+
		`AND Patients.zipcode < '%s' AND Doctors.name < '%s'`,
		datagen.MedicalZipSelValue(sv), datagen.SelValue(SH))
}

// runPoint executes sql under a forced strategy and projector, passed as
// an immutable per-query config rather than by mutating DB-wide knobs.
func runPoint(db *exec.DB, sql string, strat exec.Strategy, proj exec.Projector, series string, x float64) Point {
	res, err := db.RunCtx(context.Background(), sql,
		exec.QueryConfig{Strategy: strat, Projector: proj})
	if err != nil {
		return Point{Series: series, X: x, Skipped: true, Note: err.Error()}
	}
	// Fold index-lookup cost into the Merge bucket: in the paper's
	// decomposition (Figure 15) the production of the sublists that Merge
	// consumes is part of the Merge cost; our engine tracks it separately
	// as "CI" (tree descents) and "Scan" (unindexed fallback).
	bd := make(map[string]time.Duration, len(res.Stats.Breakdown))
	for k, v := range res.Stats.Breakdown {
		bd[k] = v
	}
	bd["Merge"] += bd["CI"] + bd["Scan"]
	delete(bd, "CI")
	delete(bd, "Scan")
	return Point{
		Series:    series,
		X:         x,
		Time:      res.Stats.SimTime,
		IOTime:    res.Stats.IOTime,
		CommTime:  res.Stats.CommTime,
		Breakdown: bd,
	}
}

// ForestDataset returns the nTrees-tree forest dataset (built once per
// tree count), the substrate of the sharding sweep.
func (l *Lab) ForestDataset(nTrees int) (*datagen.Dataset, error) {
	if l.forestDS == nil {
		l.forestDS = map[int]*datagen.Dataset{}
	}
	if ds := l.forestDS[nTrees]; ds != nil {
		return ds, nil
	}
	ds, err := datagen.Forest(l.SF, l.Seed+2, nTrees)
	if err != nil {
		return nil, err
	}
	l.forestDS[nTrees] = ds
	return ds, nil
}
