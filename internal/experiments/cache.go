package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"ghostdb/internal/exec"
)

// The cache sweep measures what the untrusted-side result cache buys
// under two opposite workloads at 1/4/16 client sessions:
//
//   - cold: every query distinct (normalized keys never repeat), so the
//     cache can only miss — this is the overhead baseline;
//   - zipf: queries drawn Zipf-skewed from a small pool, the shape of
//     real dashboard/reporting traffic — repeats hit the cache and skip
//     the secure token entirely.
//
// The sweep also *verifies* the security-relevant accounting, and does
// so from the engine's own device/bus counters rather than the per-hit
// Stats (which are zero by construction and therefore prove nothing):
// after each zipf cell drains, a quiesced probe re-runs a known-cached
// query and asserts the secure token's counters did not move at all.
// Any movement is a bug (a "hit" that still touched the token) and is
// surfaced in the report as hit_bus_bytes/hit_flash_ops.

// CachePoint is one (concurrency, mode) cell of the sweep.
type CachePoint struct {
	Concurrency     int     `json:"concurrency"`
	Mode            string  `json:"mode"` // "cold" or "zipf"
	Queries         int     `json:"queries"`
	DistinctQueries int     `json:"distinct_queries"`
	WallSeconds     float64 `json:"wall_seconds"`
	WallQPS         float64 `json:"wall_qps"`
	SimP50Ms        float64 `json:"sim_p50_ms"`
	SimP95Ms        float64 `json:"sim_p95_ms"`
	SimP99Ms        float64 `json:"sim_p99_ms"`
	SimTotalMs      float64 `json:"sim_total_ms"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheShared     uint64  `json:"cache_shared"`
	Executed        uint64  `json:"executed"`
	// HitBusBytes / HitFlashOps are measured, not taken from per-hit
	// Stats (which are zero by construction): after the cell drains, a
	// quiesced probe re-runs a known-cached query and records how much
	// the engine's own bus/flash counters moved. Any nonzero value means
	// a "hit" actually touched the secure token. Zipf cells only.
	HitBusBytes  uint64 `json:"hit_bus_bytes"` // must be 0
	HitFlashOps  uint64 `json:"hit_flash_ops"` // must be 0
	ProbeWasHit  bool   `json:"probe_was_hit"` // the quiesced probe hit, as expected
	AnswerErrors int    `json:"answer_errors"` // row-count mismatches vs the uncached baseline
	LeakedGrants bool   `json:"leaked_grants"`
}

// CacheReport is the machine-readable output (BENCH_cache.json).
type CacheReport struct {
	Scale              float64      `json:"scale"`
	Seed               int64        `json:"seed"`
	RAMBudgetBytes     int          `json:"ram_budget_bytes"`
	CacheCapacityBytes int          `json:"cache_capacity_bytes"`
	Levels             []CachePoint `json:"levels"`
	// ZipfSpeedupOK records the acceptance check: at every concurrency
	// level, the Zipf (repeated) workload achieved strictly higher wall
	// QPS than the cold (all-distinct) workload.
	ZipfSpeedupOK bool `json:"zipf_speedup_ok"`
	// HitTrafficZero records that no hit anywhere in the sweep performed
	// any secure-token bus or flash traffic.
	HitTrafficZero bool `json:"hit_traffic_zero"`
}

// DefaultCacheBytes is the sweep's cache bound: large enough that the
// pool always fits, so the zipf cell measures hits, not evictions.
const DefaultCacheBytes = 16 << 20

// maxColdQueries is the largest all-distinct cold workload the
// generator can render: 499 distinct selectivity literals × 6 query
// shapes. CacheSweep refuses larger requests rather than silently
// repeating keys (which would let the "cold" baseline hit the cache).
const maxColdQueries = 499 * 6

// coldWorkload renders n pairwise-distinct queries: the visible
// selectivity literal and the projection shape vary so no two queries
// normalize to the same cache key (n must be ≤ maxColdQueries).
func coldWorkload(n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		sv := float64(i%499+1) / 1000.0
		shape := i / 499 % 6
		out = append(out, SynthQ(sv, shape%3+1, shape >= 3))
	}
	return out
}

// zipfPool is the repeated-query pool: a handful of the shapes real
// clients refresh over and over.
func zipfPool() []string {
	var pool []string
	for _, sv := range SVGrid[:4] {
		pool = append(pool, SynthQ(sv, 1, false))
		pool = append(pool, SynthQ(sv, 2, true))
	}
	return pool
}

// zipfWorkload draws n queries from the pool with Zipf-skewed
// popularity (s=1.3), the canonical repeated-traffic shape.
func zipfWorkload(n int, seed int64) []string {
	pool := zipfPool()
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.3, 1, uint64(len(pool)-1))
	out := make([]string, n)
	for i := range out {
		out[i] = pool[z.Uint64()]
	}
	return out
}

// CacheSweep runs the cold and zipf workloads at each concurrency level
// on fresh synthetic DBs (result cache enabled) and reports throughput,
// latency percentiles and the cache's savings accounting.
func (l *Lab) CacheSweep(levels []int, queriesPerLevel int) (*CacheReport, error) {
	if queriesPerLevel > maxColdQueries {
		return nil, fmt.Errorf("cache sweep: %d queries per level exceeds the %d distinct queries the cold workload can render",
			queriesPerLevel, maxColdQueries)
	}
	ds, err := l.SynthDataset()
	if err != nil {
		return nil, err
	}
	rep := &CacheReport{
		Scale:              l.SF,
		Seed:               l.Seed,
		CacheCapacityBytes: DefaultCacheBytes,
		ZipfSpeedupOK:      true,
		HitTrafficZero:     true,
	}

	// Uncached baseline row counts, for answer verification.
	baseline := map[string]int{}
	baseDB, err := ds.NewDB(exec.Options{FlashParams: flashFor(l.SF)})
	if err != nil {
		return nil, err
	}
	for _, sql := range zipfPool() {
		res, err := baseDB.Run(sql)
		if err != nil {
			return nil, fmt.Errorf("baseline %q: %w", sql, err)
		}
		baseline[sql] = len(res.Rows)
	}

	for _, level := range levels {
		var coldQPS, zipfQPS float64
		for _, mode := range []string{"cold", "zipf"} {
			db, err := ds.NewDB(exec.Options{
				FlashParams:          flashFor(l.SF),
				MaxConcurrentQueries: level,
				ResultCacheBytes:     DefaultCacheBytes,
			})
			if err != nil {
				return nil, err
			}
			rep.RAMBudgetBytes = db.RAM.Budget()

			var queries []string
			if mode == "cold" {
				queries = coldWorkload(queriesPerLevel)
			} else {
				queries = zipfWorkload(queriesPerLevel, l.Seed+int64(level))
			}
			distinct := map[string]bool{}
			for _, q := range queries {
				distinct[q] = true
			}

			if mode == "cold" && len(distinct) != len(queries) {
				return nil, fmt.Errorf("cache sweep: cold workload not all-distinct (%d of %d)",
					len(distinct), len(queries))
			}

			answerErrs := 0
			rs := runWorkload(db, level, queries, exec.QueryConfig{}, func(sql string, res *exec.Result) {
				if want, ok := baseline[sql]; ok && len(res.Rows) != want {
					answerErrs++
				}
			})
			if rs.firstErr != nil {
				return nil, fmt.Errorf("cache sweep %s/%d: %w", mode, level, rs.firstErr)
			}

			// Quiesced zero-traffic probe (zipf only): re-run the very
			// first submitted query — it certainly executed and is
			// cached — and measure, from the engine's own counters
			// rather than the hit's synthesized Stats, whether serving
			// it moved a single byte or page on the secure token.
			var hitBus, hitFlash uint64
			probeHit := mode != "zipf"
			if mode == "zipf" {
				devBefore := db.Dev.Counters()
				downBefore, upBefore := db.Bus.Counters()
				pres, err := db.RunCtx(context.Background(), queries[0], exec.QueryConfig{})
				if err != nil {
					return nil, fmt.Errorf("cache sweep probe %s/%d: %w", mode, level, err)
				}
				devAfter := db.Dev.Counters()
				downAfter, upAfter := db.Bus.Counters()
				probeHit = pres.Stats.CacheHit || pres.Stats.CacheShared
				// Absolute differences: executed queries *reset* the
				// shared counters, so any movement at all (up or down)
				// means the probe touched the token.
				absDiff := func(a, b uint64) uint64 {
					if a < b {
						return b - a
					}
					return a - b
				}
				hitBus = absDiff(downAfter, downBefore) + absDiff(upAfter, upBefore)
				hitFlash = absDiff(devAfter.PageReads, devBefore.PageReads) +
					absDiff(devAfter.PageWrites, devBefore.PageWrites) +
					absDiff(devAfter.BlockErases, devBefore.BlockErases)
			}

			tot := db.Totals()
			pt := CachePoint{
				Concurrency:     level,
				Mode:            mode,
				Queries:         len(queries),
				DistinctQueries: len(distinct),
				WallSeconds:     rs.wall.Seconds(),
				WallQPS:         rs.qps(),
				SimTotalMs:      float64(rs.simTotal.Microseconds()) / 1000,
				SimP50Ms:        rs.p50ms(),
				SimP95Ms:        rs.p95ms(),
				SimP99Ms:        rs.p99ms(),
				CacheHits:       tot.CacheHits,
				CacheShared:     tot.CacheShared,
				Executed:        tot.Queries - tot.CacheHits - tot.CacheShared,
				HitBusBytes:     hitBus,
				HitFlashOps:     hitFlash,
				ProbeWasHit:     probeHit,
				AnswerErrors:    answerErrs,
				LeakedGrants:    db.RAM.Leaked(),
			}
			if hitBus != 0 || hitFlash != 0 || !probeHit {
				rep.HitTrafficZero = false
			}
			if mode == "cold" {
				coldQPS = pt.WallQPS
			} else {
				zipfQPS = pt.WallQPS
			}
			rep.Levels = append(rep.Levels, pt)
		}
		if !(zipfQPS > coldQPS) {
			rep.ZipfSpeedupOK = false
		}
	}
	return rep, nil
}
