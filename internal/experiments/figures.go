package experiments

import (
	"fmt"
	"time"

	"ghostdb/internal/datagen"
	"ghostdb/internal/exec"
	"ghostdb/internal/flash"
	"ghostdb/internal/index"
	"ghostdb/internal/metrics"
	"ghostdb/internal/schema"
)

// Table1 returns the cost-model parameters (Table 1 of the paper).
func Table1() []string {
	m := metrics.DefaultModel()
	return []string{
		fmt.Sprintf("Communication throughput (MB/s)        Varying (default 1.5)"),
		fmt.Sprintf("Size of an ID (bytes)                  4"),
		fmt.Sprintf("Size of a page in Flash (bytes)        %d", flash.DefaultPageSize),
		fmt.Sprintf("RAM size (bytes)                       65536"),
		fmt.Sprintf("Time to read a page in Flash           %v", m.ReadPage),
		fmt.Sprintf("Time to write a page in Flash          %v", m.WritePage),
		fmt.Sprintf("Time to transfer a byte to RAM         %v", m.PerByte),
	}
}

// Fig7 measures the storage cost of the four indexation schemes as the
// number of indexed hidden attributes per table grows from 0 to 5, plus
// the constant DBSize line, in MB at the lab's scale. The medical
// dataset's sizes are appended as extra points at X = -1.
func (l *Lab) Fig7() (*Figure, error) {
	fig := &Figure{Name: "fig7", Title: "Storage cost of different indexing schemes",
		XLabel: "indexed hidden attributes per table"}
	ds, err := l.SynthDataset()
	if err != nil {
		return nil, err
	}
	dbSize := rawDBSizeMB(ds)
	variants := []index.Variant{index.VariantFull, index.VariantBasic, index.VariantStar, index.VariantJoin}
	for k := 0; k <= 5; k++ {
		for _, v := range variants {
			mb, err := indexSizeMB(ds, v, k)
			if err != nil {
				return nil, err
			}
			fig.Points = append(fig.Points, Point{Series: v.String(), X: float64(k),
				Time: time.Duration(mb * float64(time.Second))})
		}
		fig.Points = append(fig.Points, Point{Series: "DBSize", X: float64(k),
			Time: time.Duration(dbSize * float64(time.Second))})
	}
	// Real (medical) dataset sizes, as reported at the end of §6.3.
	med, err := l.MedicalDataset()
	if err != nil {
		return nil, err
	}
	for _, v := range variants {
		mb, err := indexSizeMB(med, v, 99) // all hidden attrs
		if err != nil {
			return nil, err
		}
		fig.Points = append(fig.Points, Point{Series: "medical-" + v.String(), X: -1,
			Time: time.Duration(mb * float64(time.Second))})
	}
	fig.Points = append(fig.Points, Point{Series: "medical-DBSize", X: -1,
		Time: time.Duration(rawDBSizeMB(med) * float64(time.Second))})
	return fig, nil
}

// MB is encoded in Point.Time as seconds for uniformity; helpers below.

// SizeMB extracts the MB value from a Fig7 point.
func SizeMB(p Point) float64 { return p.Time.Seconds() }

// rawDBSizeMB is the size of the raw visible+hidden data without indexes.
func rawDBSizeMB(ds *datagen.Dataset) float64 {
	total := 0
	for _, t := range ds.Sch.Tables {
		w := 4 + 4*len(t.Refs) // id + fks
		for _, c := range t.Columns {
			w += c.EncodedWidth()
		}
		total += w * ds.Load[t.Index].Rows
	}
	return float64(total) / 1e6
}

// indexSizeMB builds the index structures for a variant, restricting each
// table to its first k hidden attributes, and returns the flash footprint.
func indexSizeMB(ds *datagen.Dataset, v index.Variant, k int) (float64, error) {
	dev, err := flash.NewDevice(flashFor(1)) // lazily allocated; generous
	if err != nil {
		return 0, err
	}
	inputs := map[int]*index.TableInput{}
	for _, t := range ds.Sch.Tables {
		ld := ds.Load[t.Index]
		in := &index.TableInput{Rows: ld.Rows, FKs: ld.FKs}
		count := 0
		for ci, col := range t.Columns {
			if !col.Hidden || count >= k {
				continue
			}
			in.Attrs = append(in.Attrs, index.AttrData{ColIdx: ci, Width: col.EncodedWidth(), Data: ld.Cols[ci].Data})
			count++
		}
		inputs[t.Index] = in
	}
	cat, err := index.Build(dev, ds.Sch, inputs, v)
	if err != nil {
		return 0, err
	}
	pages := cat.Storage().Total()
	return float64(pages) * float64(dev.PageSize()) / 1e6, nil
}

// Fig8 compares Pre vs Cross-Pre and Post vs Cross-Post filtering on
// query Q as the visible selectivity varies (sH = 0.1).
func (l *Lab) Fig8() (*Figure, error) {
	return l.strategySweep("fig8", "Filtering vs Cross-Filtering", SynthQ,
		map[string]exec.Strategy{
			"Pre-Filter":        exec.StratPre,
			"Cross-Pre-Filter":  exec.StratCrossPre,
			"Post-Filter":       exec.StratPost,
			"Cross-Post-Filter": exec.StratCrossPost,
		})
}

// Fig9 compares the two Cross strategies (crossover near sV ≈ 0.1).
func (l *Lab) Fig9() (*Figure, error) {
	return l.strategySweep("fig9", "Cross-Pre vs Cross-Post", SynthQ,
		map[string]exec.Strategy{
			"Cross-Pre-Filter":  exec.StratCrossPre,
			"Cross-Post-Filter": exec.StratCrossPost,
		})
}

// Fig10 compares Pre vs Post vs NoFilter when the Cross optimization
// cannot apply (hidden selection outside the visible table's subtree).
// The Post curve stops at sV = 0.5, as in the paper.
func (l *Lab) Fig10() (*Figure, error) {
	return l.strategySweep("fig10", "Pre vs Post-Filtering (no Cross)",
		func(sv float64, _ int, _ bool) string { return SynthQNoCross(sv) },
		map[string]exec.Strategy{
			"Pre-Filter":  exec.StratPre,
			"Post-Filter": exec.StratPost,
			"NoFilter":    exec.StratNoFilter,
		})
}

// Fig11 compares Bloom post-filtering with the exact Post-Select.
func (l *Lab) Fig11() (*Figure, error) {
	return l.strategySweep("fig11", "Post-Filtering alternatives", SynthQ,
		map[string]exec.Strategy{
			"Post-Filter":       exec.StratPost,
			"Cross-Post-Filter": exec.StratCrossPost,
			"Post-Select":       exec.StratPostSelect,
			"Cross-Post-Select": exec.StratCrossPostSelect,
		})
}

func (l *Lab) strategySweep(name, title string, mkQ func(float64, int, bool) string,
	series map[string]exec.Strategy) (*Figure, error) {
	db, err := l.SynthDB()
	if err != nil {
		return nil, err
	}
	fig := &Figure{Name: name, Title: title, XLabel: "selectivity of Visible selection sV (log)"}
	for _, sv := range SVGrid {
		sql := mkQ(sv, 1, false)
		for label, strat := range series {
			fig.Points = append(fig.Points, runPoint(db, sql, strat, exec.ProjectBloom, label, sv))
		}
	}
	db.SetForceStrategy(exec.StratAuto)
	return fig, nil
}

// Fig12 compares the three projection algorithms under a Cross-Pre QEPSJ
// (query Q augmented with a projection on T1.h1).
func (l *Lab) Fig12() (*Figure, error) {
	return l.projectionSweep("fig12", "Projecting in Cross-Pre-Filtering execution", exec.StratCrossPre)
}

// Fig13 is Fig12 under a Cross-Post QEPSJ: Bloom false positives are
// present and must be eliminated by the projection.
func (l *Lab) Fig13() (*Figure, error) {
	return l.projectionSweep("fig13", "Projecting in Cross-Post-Filtering execution", exec.StratCrossPost)
}

func (l *Lab) projectionSweep(name, title string, strat exec.Strategy) (*Figure, error) {
	db, err := l.SynthDB()
	if err != nil {
		return nil, err
	}
	fig := &Figure{Name: name, Title: title, XLabel: "selectivity of Visible selection sV (log)"}
	projectors := map[string]exec.Projector{
		"Project":      exec.ProjectBloom,
		"Project-NoBF": exec.ProjectNoBF,
		"Brute-Force":  exec.ProjectBruteForce,
	}
	for _, sv := range SVGrid {
		sql := SynthQ(sv, 1, true)
		for label, proj := range projectors {
			fig.Points = append(fig.Points, runPoint(db, sql, strat, proj, label, sv))
		}
	}
	db.SetForceStrategy(exec.StratAuto)
	db.SetProjector(exec.ProjectBloom)
	return fig, nil
}

// Fig14 sweeps the link throughput from 0.3 to 10 MBps for query Q with
// one, two or three projected visible attributes (sV = 0.01, Cross-Pre):
// below ≈1.3 MBps the link becomes the bottleneck.
func (l *Lab) Fig14() (*Figure, error) {
	db, err := l.SynthDB()
	if err != nil {
		return nil, err
	}
	fig := &Figure{Name: "fig14", Title: "Impact of the communication throughput", XLabel: "throughput (MBps)"}
	grid := []float64{0.3, 0.5, 0.8, 1.0, 1.3, 2, 3, 5, 7, 10}
	for nProj := 1; nProj <= 3; nProj++ {
		sql := SynthQ(0.01, nProj, false)
		for _, mbps := range grid {
			db.SetThroughput(mbps)
			p := runPoint(db, sql, exec.StratCrossPre, exec.ProjectBloom,
				fmt.Sprintf("Project%d", nProj), mbps)
			fig.Points = append(fig.Points, p)
		}
	}
	db.SetThroughput(0) // restore default? 0 is ignored by bus
	db.SetThroughput(1.5)
	db.SetForceStrategy(exec.StratAuto)
	return fig, nil
}

// CostBars is a Figure whose points carry the per-operator decomposition
// (Merge / SJoin / Store / Project) for PRE / POST runs at three
// selectivities — Figures 15 (synthetic) and 16 (medical).
func (l *Lab) Fig15() (*Figure, error) {
	db, err := l.SynthDB()
	if err != nil {
		return nil, err
	}
	return costBars(db, "fig15", "Cost decomposition, synthetic dataset", func(sv float64) string {
		return SynthQ(sv, 1, false)
	})
}

// Fig16 is the cost decomposition on the medical dataset, where the
// Measurements/Patients ≈ 92 ratio makes SJoin dominate.
func (l *Lab) Fig16() (*Figure, error) {
	db, err := l.MedicalDB()
	if err != nil {
		return nil, err
	}
	return costBars(db, "fig16", "Cost decomposition, medical dataset", MedicalQ)
}

func costBars(db *exec.DB, name, title string, mkQ func(float64) string) (*Figure, error) {
	fig := &Figure{Name: name, Title: title, XLabel: "strategy / sV"}
	cases := []struct {
		label string
		strat exec.Strategy
		sv    float64
	}{
		{"PRE1", exec.StratCrossPre, 0.01},
		{"POST1", exec.StratCrossPost, 0.01},
		{"PRE5", exec.StratCrossPre, 0.05},
		{"POST5", exec.StratCrossPost, 0.05},
		{"PRE20", exec.StratCrossPre, 0.2},
		{"POST20", exec.StratCrossPost, 0.2},
	}
	for _, c := range cases {
		p := runPoint(db, mkQ(c.sv), c.strat, exec.ProjectBloom, c.label, c.sv)
		fig.Points = append(fig.Points, p)
	}
	db.SetForceStrategy(exec.StratAuto)
	return fig, nil
}

// All runs every figure (the bench harness and the CLI share this list).
func (l *Lab) All() ([]*Figure, error) {
	type fn struct {
		name string
		f    func() (*Figure, error)
	}
	fns := []fn{
		{"fig7", l.Fig7}, {"fig8", l.Fig8}, {"fig9", l.Fig9}, {"fig10", l.Fig10},
		{"fig11", l.Fig11}, {"fig12", l.Fig12}, {"fig13", l.Fig13},
		{"fig14", l.Fig14}, {"fig15", l.Fig15}, {"fig16", l.Fig16},
	}
	var out []*Figure
	for _, f := range fns {
		fig, err := f.f()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
		out = append(out, fig)
	}
	return out, nil
}

var _ = schema.IDWidth
