package experiments

import "testing"

// TestPagecacheSweepContract runs a small sweep and checks PR 10's
// contract points: the cache-on arm cuts Down bus bytes by at least
// MinBusDownDropPct and is no slower in simulated time, the uplink
// audit trails are byte-for-byte identical, and both arms' answers
// match the fresh-engine baseline.
func TestPagecacheSweepContract(t *testing.T) {
	lab := NewLab(0.002, 7)
	rep, err := lab.PagecacheSweep(36)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BusSavingsOK {
		t.Fatalf("page cache saved only %.1f%% of Down bytes, want >= %.0f%% (off %d, on %d)",
			rep.BusDownDropPct, MinBusDownDropPct, rep.Off.BusDownBytes, rep.On.BusDownBytes)
	}
	if !rep.LatencyOK {
		t.Fatalf("page cache did not lower simulated latency: p50 %.3fms vs %.3fms, total %.3fms vs %.3fms",
			rep.On.SimP50Ms, rep.Off.SimP50Ms, rep.On.SimTotalMs, rep.Off.SimTotalMs)
	}
	if !rep.UplinkParityOK {
		t.Fatalf("uplink audit trails diverged: off %d records, on %d",
			rep.Off.UplinkRecords, rep.On.UplinkRecords)
	}
	if !rep.PrefetchQuiesced {
		t.Fatal("prefetch in-flight gauge nonzero after the workload drained")
	}
	for _, p := range []PagecachePoint{rep.Off, rep.On} {
		if p.AnswerErrors != 0 {
			t.Fatalf("%s: %d answers diverged from the fresh-engine baseline", p.Mode, p.AnswerErrors)
		}
		if p.LeakedGrants {
			t.Fatalf("%s: leaked RAM grants", p.Mode)
		}
	}
	if rep.Off.PagecacheHits != 0 {
		t.Fatalf("cache-off arm recorded %d page-cache hits", rep.Off.PagecacheHits)
	}
	if rep.On.PagecacheHits == 0 {
		t.Fatal("cache-on arm recorded no page-cache hits on a Zipf workload")
	}
	if rep.On.BusCoalesced == 0 {
		t.Fatal("cache-on arm coalesced no Down transfers")
	}
}
