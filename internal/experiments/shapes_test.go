package experiments

import (
	"testing"
	"time"
)

// These tests assert the *shapes* the paper reports — who wins, by
// roughly what factor, where crossovers fall — at a small scale factor.
// EXPERIMENTS.md records the full series; these keep the claims honest
// under regression.

func testLab(t *testing.T) *Lab {
	t.Helper()
	return NewLab(0.002, 1)
}

func seriesMap(fig *Figure) map[string]map[float64]Point {
	out := map[string]map[float64]Point{}
	for _, p := range fig.Points {
		if out[p.Series] == nil {
			out[p.Series] = map[float64]Point{}
		}
		out[p.Series][p.X] = p
	}
	return out
}

func TestFig7StorageOrdering(t *testing.T) {
	l := testLab(t)
	fig, err := l.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	s := seriesMap(fig)
	for k := 0.0; k <= 5; k++ {
		full := SizeMB(s["FullIndex"][k])
		basic := SizeMB(s["BasicIndex"][k])
		star := SizeMB(s["StarIndex"][k])
		join := SizeMB(s["JoinIndex"][k])
		// §6.3: Full ≈ Basic (small difference), both > Star > Join.
		if !(full >= basic) {
			t.Fatalf("k=%v: Full %.1f < Basic %.1f", k, full, basic)
		}
		if basic > 1.3*full {
			t.Fatalf("k=%v: Basic should be close to Full", k)
		}
		if k >= 1 && !(basic > star && star > join) {
			t.Fatalf("k=%v: ordering broken: basic=%.1f star=%.1f join=%.1f", k, basic, star, join)
		}
	}
	// Index cost grows with the number of indexed attributes.
	if !(SizeMB(s["FullIndex"][5]) > SizeMB(s["FullIndex"][1])) {
		t.Fatal("FullIndex not growing with k")
	}
	// DBSize constant.
	if SizeMB(s["DBSize"][0]) != SizeMB(s["DBSize"][5]) {
		t.Fatal("DBSize should be constant")
	}
	// Real dataset: index cost well below raw data size, as in the paper
	// (57MB of indexes vs 169MB of data).
	if !(SizeMB(s["medical-FullIndex"][-1]) < SizeMB(s["medical-DBSize"][-1])) {
		t.Fatal("medical FullIndex larger than the database itself")
	}
}

func TestFig8CrossBeatsPlain(t *testing.T) {
	l := testLab(t)
	fig, err := l.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	s := seriesMap(fig)
	// §6.4: "the Cross filtering optimization is beneficial whatever the
	// selectivity of the Visible selection".
	for _, sv := range SVGrid {
		pre, cpre := s["Pre-Filter"][sv], s["Cross-Pre-Filter"][sv]
		if pre.Skipped || cpre.Skipped {
			continue
		}
		if cpre.Time > pre.Time {
			t.Fatalf("sv=%v: Cross-Pre %v slower than Pre %v", sv, cpre.Time, pre.Time)
		}
	}
	// "The benefit becomes larger as this selectivity decreases":
	// at sV=0.5 the ratio must exceed the ratio at 0.01.
	r1 := float64(s["Pre-Filter"][0.01].Time) / float64(s["Cross-Pre-Filter"][0.01].Time)
	r2 := float64(s["Pre-Filter"][0.5].Time) / float64(s["Cross-Pre-Filter"][0.5].Time)
	if r2 <= r1 {
		t.Fatalf("cross benefit should grow with sv: %.2f -> %.2f", r1, r2)
	}
	// Paper reports factors around 1.8–2.3; accept a broad band.
	if r1 < 1.1 {
		t.Fatalf("Cross-Pre benefit at 0.01 only %.2fx", r1)
	}
}

func TestFig9CrossoverNearTenPercent(t *testing.T) {
	l := testLab(t)
	fig, err := l.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	s := seriesMap(fig)
	// §6.4: Cross-Pre wins at high selectivity, loses beyond sV ≈ 0.1.
	if !(s["Cross-Pre-Filter"][0.001].Time < s["Cross-Post-Filter"][0.001].Time) {
		t.Fatal("Cross-Pre should win at sV=0.001")
	}
	if !(s["Cross-Pre-Filter"][0.5].Time > s["Cross-Post-Filter"][0.5].Time) {
		t.Fatal("Cross-Post should win at sV=0.5")
	}
	// Crossover inside [0.02, 0.5].
	crossed := false
	for _, sv := range SVGrid {
		if sv < 0.02 {
			continue
		}
		if s["Cross-Pre-Filter"][sv].Time > s["Cross-Post-Filter"][sv].Time {
			crossed = true
			if sv > 0.5 {
				t.Fatalf("crossover too late: %v", sv)
			}
			break
		}
	}
	if !crossed {
		t.Fatal("no crossover found")
	}
}

func TestFig10PostStopsAtHalf(t *testing.T) {
	l := testLab(t)
	fig, err := l.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	s := seriesMap(fig)
	// Post-Filter is infeasible beyond sV = 0.5 ("the Bloom filter
	// introduces more false positives than it can eliminate").
	if !s["Post-Filter"][1.0].Skipped {
		t.Fatal("Post-Filter should be infeasible at sV=1")
	}
	if s["Post-Filter"][0.5].Skipped {
		t.Fatal("Post-Filter should still run at sV=0.5")
	}
	// Pre wins at very low sV; Post wins in the middle range (paper: "Post-
	// Filter becomes better than Pre-Filter for values of sV higher than
	// 0.05").
	if !(s["Pre-Filter"][0.001].Time < s["Post-Filter"][0.001].Time) {
		t.Fatal("Pre should win at 0.001")
	}
	if !(s["Post-Filter"][0.2].Time < s["Pre-Filter"][0.2].Time) {
		t.Fatal("Post should win at 0.2")
	}
	// NoFilter runs at every selectivity.
	for _, sv := range SVGrid {
		if s["NoFilter"][sv].Skipped {
			t.Fatalf("NoFilter skipped at %v", sv)
		}
	}
}

func TestFig11PostSelectWorseThanBloom(t *testing.T) {
	l := testLab(t)
	fig, err := l.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	s := seriesMap(fig)
	// §6.4 justifies "why we did not consider Post-Select as a relevant
	// strategy": at moderate-to-high sV it costs more than Bloom
	// post-filtering.
	worse := 0
	for _, sv := range []float64{0.05, 0.1, 0.2, 0.5} {
		ps, pf := s["Post-Select"][sv], s["Post-Filter"][sv]
		if ps.Skipped || pf.Skipped {
			continue
		}
		if ps.Time > pf.Time {
			worse++
		}
	}
	if worse < 3 {
		t.Fatalf("Post-Select should generally lose to Post-Filter (worse at %d/4 points)", worse)
	}
}

func TestFig12ProjectBeatsBruteForce(t *testing.T) {
	l := testLab(t)
	fig, err := l.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	s := seriesMap(fig)
	// §6.5: "Project is 60% faster than Brute-Force when sV=0.1 and the
	// gap increases with sV"; NoBF sits between them at high sV.
	for _, sv := range []float64{0.1, 0.2, 0.5} {
		if !(s["Project"][sv].Time < s["Brute-Force"][sv].Time) {
			t.Fatalf("sv=%v: Project %v not faster than Brute-Force %v",
				sv, s["Project"][sv].Time, s["Brute-Force"][sv].Time)
		}
	}
	if !(s["Project"][0.5].Time <= s["Project-NoBF"][0.5].Time) {
		t.Fatal("Bloom pre-filtering should not hurt the projection")
	}
}

func TestFig13FalsePositivesInsignificant(t *testing.T) {
	l := testLab(t)
	fig12, err := l.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	fig13, err := l.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	s12, s13 := seriesMap(fig12), seriesMap(fig13)
	// §6.5: both figures "show the insignificant impact of false
	// positives": the Project curve under Cross-Post must stay in the
	// same ballpark as under Cross-Pre at moderate selectivities.
	for _, sv := range []float64{0.05, 0.1} {
		a, b := s12["Project"][sv].Time, s13["Project"][sv].Time
		if a == 0 || b == 0 {
			t.Fatalf("missing points at %v", sv)
		}
		ratio := float64(b) / float64(a)
		if ratio > 3 || ratio < 0.33 {
			t.Fatalf("sv=%v: projection cost diverges across QEPSJ strategies: %v vs %v", sv, a, b)
		}
	}
}

func TestFig14ThroughputBottleneck(t *testing.T) {
	l := testLab(t)
	fig, err := l.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	s := seriesMap(fig)
	// Total time decreases monotonically with throughput and flattens:
	// §6.6 "a communication throughput lesser than 1.3MBps becomes the
	// main bottleneck".
	for _, series := range []string{"Project1", "Project2", "Project3"} {
		prev := time.Duration(0)
		grid := []float64{0.3, 0.5, 0.8, 1.0, 1.3, 2, 3, 5, 7, 10}
		for i, mbps := range grid {
			cur := s[series][mbps].Time
			if cur == 0 {
				t.Fatalf("%s missing point at %v", series, mbps)
			}
			if i > 0 && cur > prev {
				t.Fatalf("%s: time increased with throughput at %v", series, mbps)
			}
			prev = cur
		}
		slow := s[series][0.3]
		fast := s[series][10.0]
		// Scale-independent shape: the link share collapses as the
		// throughput grows (the paper's "bottleneck below 1.3MBps" claim
		// is about absolute volume and is verified at larger scale in
		// EXPERIMENTS.md).
		if !(slow.CommTime > 10*fast.CommTime) {
			t.Fatalf("%s: comm time should scale with 1/throughput (%v vs %v)",
				series, slow.CommTime, fast.CommTime)
		}
		if slow.IOTime != fast.IOTime {
			t.Fatalf("%s: flash cost must not depend on the link", series)
		}
	}
	// More projected attributes -> more bytes -> slower at low throughput.
	if !(s["Project3"][0.3].Time > s["Project1"][0.3].Time) {
		t.Fatal("Project3 should cost more than Project1 at 0.3MBps")
	}
}

func TestFig15BreakdownComponents(t *testing.T) {
	l := testLab(t)
	fig, err := l.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Points {
		if p.Skipped {
			t.Fatalf("%s skipped: %s", p.Series, p.Note)
		}
		sum := time.Duration(0)
		for _, c := range []string{"Merge", "SJoin", "Store", "Project"} {
			sum += p.Breakdown[c]
		}
		if sum == 0 {
			t.Fatalf("%s: empty breakdown", p.Series)
		}
		if sum > p.IOTime {
			t.Fatalf("%s: components %v exceed total %v", p.Series, sum, p.IOTime)
		}
	}
	s := seriesMap(fig)
	// §6.7: "PRE is shown better than POST for sV=0.01 ... but becomes
	// worse for sV=0.20".
	if !(s["PRE1"][0.01].IOTime < s["POST1"][0.01].IOTime) {
		t.Fatal("PRE1 should beat POST1")
	}
	if !(s["PRE20"][0.2].IOTime > s["POST20"][0.2].IOTime) {
		t.Fatal("POST20 should beat PRE20")
	}
	// "the Merge cost is much higher in PRE20 than in POST20".
	if !(s["PRE20"][0.2].Breakdown["Merge"] > s["POST20"][0.2].Breakdown["Merge"]) {
		t.Fatal("Merge should dominate PRE20")
	}
}

func TestFig16SJoinDominatesOnMedical(t *testing.T) {
	// The SJoin-dominance claim rests on the Measurements/Patients ≈ 92
	// cardinality ratio, which needs a few hundred patients to show up;
	// run this figure at a larger scale than the other shape tests.
	l := NewLab(0.05, 1)
	fig, err := l.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	s := seriesMap(fig)
	// §6.7: "the cost of the SJoin operator is dominant in all
	// histograms" because Measurements/Patients ≈ 92.
	for _, p := range fig.Points {
		if p.Skipped {
			t.Fatalf("%s skipped: %s", p.Series, p.Note)
		}
		bd := p.Breakdown
		for _, other := range []string{"Merge", "Project"} {
			if bd["SJoin"]+bd["Store"] < bd[other] {
				t.Fatalf("%s: SJoin+Store (%v) not dominant vs %s (%v)",
					p.Series, bd["SJoin"]+bd["Store"], other, bd[other])
			}
		}
	}
	_ = s
}

func TestAblations(t *testing.T) {
	l := testLab(t)
	merge, err := l.AblationMergeReduction()
	if err != nil {
		t.Fatal(err)
	}
	// Less RAM -> more reduction passes -> more time (weakly monotone).
	var prev time.Duration
	for i, p := range merge.Points {
		if p.Skipped {
			t.Fatalf("merge ablation skipped at %v: %s", p.X, p.Note)
		}
		if i > 0 && p.Time > prev {
			t.Fatalf("more RAM should not cost more: %v at %vKB after %v", p.Time, p.X, prev)
		}
		prev = p.Time
	}
	bloomFig, err := l.AblationBloomRatio()
	if err != nil {
		t.Fatal(err)
	}
	// FPR decreases as m/n grows; m/n=8 lands near the paper's 2.4%.
	rates := map[float64]float64{}
	for _, p := range bloomFig.Points {
		rates[p.X] = RateOf(p)
	}
	if !(rates[2] > rates[4] && rates[4] > rates[8]) {
		t.Fatalf("bloom rates not monotone: %v", rates)
	}
	if rates[8] > 0.06 || rates[8] < 0.001 {
		t.Fatalf("m/n=8 rate %.4f far from the paper's 0.024", rates[8])
	}
	climb, err := l.AblationClimbingVsCascade()
	if err != nil {
		t.Fatal(err)
	}
	s := seriesMap(climb)
	for _, sel := range []float64{0.01, 0.05, 0.1, 0.2} {
		if !(s["climbing"][sel].Time < s["cascading"][sel].Time) {
			t.Fatalf("sel=%v: climbing (%v) should beat cascading (%v)",
				sel, s["climbing"][sel].Time, s["cascading"][sel].Time)
		}
	}
}
