// Package ref is a naive, full-memory reference evaluator for the SPJ
// query class GhostDB supports. It exists purely for differential testing:
// every query answered by the secure engine is re-answered here by brute
// force over the raw rows, and the results must match exactly, for every
// execution strategy. It performs no I/O accounting and has no RAM limits.
package ref

import (
	"fmt"

	"ghostdb/internal/query"
	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
)

// Engine holds the full (visible + hidden) rows of every table.
type Engine struct {
	sch  *schema.Schema
	rows map[int][]schema.Row     // data columns, aligned with Columns
	fks  map[int]map[int][]uint32 // table -> child table -> per-row id
	dead map[int]map[uint32]bool  // table -> tombstoned ids (rows/fks kept: ids are positional)
}

// New creates an empty reference engine.
func New(sch *schema.Schema) *Engine {
	return &Engine{
		sch:  sch,
		rows: make(map[int][]schema.Row),
		fks:  make(map[int]map[int][]uint32),
		dead: make(map[int]map[uint32]bool),
	}
}

// Load installs a table's rows and foreign keys.
func (e *Engine) Load(table int, rows []schema.Row, fks map[int][]uint32) {
	e.rows[table] = rows
	e.fks[table] = fks
}

// Insert appends one row.
func (e *Engine) Insert(table int, row schema.Row, fks map[int]uint32) {
	e.rows[table] = append(e.rows[table], row)
	if e.fks[table] == nil {
		e.fks[table] = make(map[int][]uint32)
	}
	for c, id := range fks {
		e.fks[table][c] = append(e.fks[table][c], id)
	}
}

// Rows returns the row count of a table (tombstoned rows included: ids
// are positional and never reclaimed).
func (e *Engine) Rows(table int) int { return len(e.rows[table]) }

// matchRow evaluates one single-table DML predicate set against row id.
func (e *Engine) matchRow(table int, id uint32, preds []query.Pred) bool {
	for _, p := range preds {
		var v schema.Value
		if p.ColIdx == query.IDCol {
			v = schema.IntVal(int64(id))
		} else {
			v = e.rows[table][id][p.ColIdx]
		}
		if !match(p.Op, v, p.Lo, p.Hi) {
			return false
		}
	}
	return true
}

// Update applies a resolved UPDATE: every live matching row gets the
// SET values. Returns the number of rows updated.
func (e *Engine) Update(d *query.DML) int {
	n := 0
	for id := range e.rows[d.Table] {
		uid := uint32(id)
		if e.dead[d.Table][uid] || !e.matchRow(d.Table, uid, d.Preds) {
			continue
		}
		for _, s := range d.Sets {
			e.rows[d.Table][uid][s.ColIdx] = s.Val
		}
		n++
	}
	return n
}

// Delete applies a resolved DELETE: every live matching row is
// tombstoned. Rows and fk arrays are kept intact so id chasing through
// dead rows still works, exactly as in the engine. Returns the number
// of rows deleted.
func (e *Engine) Delete(d *query.DML) int {
	n := 0
	for id := range e.rows[d.Table] {
		uid := uint32(id)
		if e.dead[d.Table][uid] || !e.matchRow(d.Table, uid, d.Preds) {
			continue
		}
		if e.dead[d.Table] == nil {
			e.dead[d.Table] = make(map[uint32]bool)
		}
		e.dead[d.Table][uid] = true
		n++
	}
	return n
}

// chase returns the id of the q-descendant row referenced by row `id` of
// table `a` (a must be an ancestor-or-self of d).
func (e *Engine) chase(a, d int, id uint32) (uint32, error) {
	if a == d {
		if int(id) >= len(e.rows[a]) {
			return 0, fmt.Errorf("ref: dangling id %d in %s", id, e.sch.Tables[a].Name)
		}
		return id, nil
	}
	for _, c := range e.sch.Tables[a].Children() {
		if c == d || e.sch.IsAncestorOf(c, d) {
			fk := e.fks[a][c]
			if int(id) >= len(fk) {
				return 0, fmt.Errorf("ref: dangling id %d in %s", id, e.sch.Tables[a].Name)
			}
			return e.chase(c, d, fk[id])
		}
	}
	return 0, fmt.Errorf("ref: no path %s -> %s", e.sch.Tables[a].Name, e.sch.Tables[d].Name)
}

func match(op sqlparse.CompareOp, v, lo, hi schema.Value) bool {
	cmp := v.Compare(lo)
	switch op {
	case sqlparse.OpEq:
		return cmp == 0
	case sqlparse.OpNe:
		return cmp != 0
	case sqlparse.OpLt:
		return cmp < 0
	case sqlparse.OpLe:
		return cmp <= 0
	case sqlparse.OpGt:
		return cmp > 0
	case sqlparse.OpGe:
		return cmp >= 0
	case sqlparse.OpBetween:
		return cmp >= 0 && v.Compare(hi) <= 0
	}
	return false
}

// Evaluate answers a resolved query: one result row per anchor tuple
// satisfying all predicates, in ascending anchor-id order, projecting the
// requested columns. Forest queries (q.Parts set) are answered as the
// cross product of their per-tree parts.
func (e *Engine) Evaluate(q *query.Query) ([]schema.Row, error) {
	if len(q.Parts) > 0 {
		return e.evaluateForest(q)
	}
	anchorRows := len(e.rows[q.Anchor])
	var out []schema.Row
	for id := uint32(0); int(id) < anchorRows; id++ {
		ok := true
		// SQL join semantics over tombstones: the tuple dies if the
		// chased row of ANY table in the FROM set was deleted.
		for _, ti := range q.Tables {
			did, err := e.chase(q.Anchor, ti, id)
			if err != nil {
				return nil, err
			}
			if e.dead[ti][did] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, p := range q.Preds {
			did, err := e.chase(q.Anchor, p.Table, id)
			if err != nil {
				return nil, err
			}
			var v schema.Value
			if p.ColIdx == query.IDCol {
				v = schema.IntVal(int64(did))
			} else {
				v = e.rows[p.Table][did][p.ColIdx]
			}
			if !match(p.Op, v, p.Lo, p.Hi) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row := make(schema.Row, 0, len(q.Projections))
		for _, pr := range q.Projections {
			did, err := e.chase(q.Anchor, pr.Table, id)
			if err != nil {
				return nil, err
			}
			if pr.ColIdx == query.IDCol {
				row = append(row, schema.IntVal(int64(did)))
			} else {
				row = append(row, e.rows[pr.Table][did][pr.ColIdx])
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// evaluateForest answers a forest query by nested loops over the parts'
// row sets (deliberately naive — this is the oracle the engine's
// scatter/merge path is checked against). Filter-only parts contribute
// their qualifying-row count as a multiplicity; top-level COUNT(*) is
// the product of the parts' counts.
func (e *Engine) evaluateForest(q *query.Query) ([]schema.Row, error) {
	partRows := make([][]schema.Row, len(q.Parts))
	for i, part := range q.Parts {
		rows, err := e.Evaluate(part)
		if err != nil {
			return nil, err
		}
		partRows[i] = rows
	}
	if q.CountOnly {
		n := int64(1)
		for _, rows := range partRows {
			n *= int64(len(rows))
		}
		return []schema.Row{{schema.IntVal(n)}}, nil
	}
	mult := 1
	for i, part := range q.Parts {
		if part.CountOnly {
			mult *= len(partRows[i])
			partRows[i] = nil
		}
	}
	out := []schema.Row{}
	if mult == 0 {
		return out, nil
	}
	var walk func(gi int, picked []schema.Row)
	walk = func(gi int, picked []schema.Row) {
		if gi == len(q.Parts) {
			row := make(schema.Row, len(q.Projections))
			for i, pc := range q.PartProj {
				row[i] = picked[pc.Part][pc.Col]
			}
			for m := 0; m < mult; m++ {
				out = append(out, row)
			}
			return
		}
		if partRows[gi] == nil {
			walk(gi+1, append(picked, nil))
			return
		}
		for _, r := range partRows[gi] {
			walk(gi+1, append(picked, r))
		}
	}
	walk(0, nil)
	return out, nil
}
