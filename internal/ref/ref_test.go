package ref

import (
	"testing"

	"ghostdb/internal/query"
	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
)

func refSchema(t *testing.T) *schema.Schema {
	t.Helper()
	cols := []schema.Column{
		{Name: "v", Kind: schema.KindInt},
		{Name: "h", Kind: schema.KindInt, Hidden: true},
	}
	defs := []schema.TableDef{
		{Name: "A", Columns: cols, Refs: []schema.Ref{{FKColumn: "fb", Child: "B", Hidden: true}}},
		{Name: "B", Columns: cols, Refs: []schema.Ref{{FKColumn: "fc", Child: "C", Hidden: true}}},
		{Name: "C", Columns: cols},
	}
	s, err := schema.New(defs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func row(v, h int64) schema.Row { return schema.Row{schema.IntVal(v), schema.IntVal(h)} }

func loadRef(t *testing.T, sch *schema.Schema) *Engine {
	t.Helper()
	e := New(sch)
	a, _ := sch.Lookup("A")
	b, _ := sch.Lookup("B")
	c, _ := sch.Lookup("C")
	e.Load(c.Index, []schema.Row{row(1, 10), row(2, 20), row(3, 30)}, nil)
	e.Load(b.Index, []schema.Row{row(5, 50), row(6, 60)}, map[int][]uint32{c.Index: {2, 0}})
	e.Load(a.Index, []schema.Row{row(7, 70), row(8, 80), row(9, 90)},
		map[int][]uint32{b.Index: {0, 1, 0}})
	return e
}

func evalQ(t *testing.T, sch *schema.Schema, e *Engine, sql string) []schema.Row {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Resolve(sch, stmt.(*sqlparse.Select), sql)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestTransitiveChase(t *testing.T) {
	sch := refSchema(t)
	e := loadRef(t, sch)
	// A row 0 -> B row 0 -> C row 2 (h=30).
	rows := evalQ(t, sch, e, `SELECT A.id, C.h FROM A, B, C WHERE A.fb = B.id AND B.fc = C.id AND C.h = 30`)
	if len(rows) != 2 { // A rows 0 and 2 reference B0 -> C2
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 0 || rows[1][0].I != 2 || rows[0][1].I != 30 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPredAndProjectionOrder(t *testing.T) {
	sch := refSchema(t)
	e := loadRef(t, sch)
	rows := evalQ(t, sch, e, `SELECT B.v, A.id FROM A, B WHERE A.fb = B.id AND A.v >= 8`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Anchor order ascending: A1 then A2.
	if rows[0][1].I != 1 || rows[0][0].I != 6 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInsertVisible(t *testing.T) {
	sch := refSchema(t)
	e := loadRef(t, sch)
	b, _ := sch.Lookup("B")
	c, _ := sch.Lookup("C")
	e.Insert(b.Index, row(99, 990), map[int]uint32{c.Index: 1})
	if e.Rows(b.Index) != 3 {
		t.Fatalf("rows = %d", e.Rows(b.Index))
	}
	rows := evalQ(t, sch, e, `SELECT B.id, C.v FROM B, C WHERE B.fc = C.id AND B.v = 99`)
	if len(rows) != 1 || rows[0][1].I != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestDanglingReferenceError(t *testing.T) {
	sch := refSchema(t)
	e := New(sch)
	a, _ := sch.Lookup("A")
	b, _ := sch.Lookup("B")
	c, _ := sch.Lookup("C")
	e.Load(c.Index, []schema.Row{row(1, 1)}, nil)
	e.Load(b.Index, []schema.Row{row(2, 2)}, map[int][]uint32{c.Index: {5}}) // dangling
	e.Load(a.Index, []schema.Row{row(3, 3)}, map[int][]uint32{b.Index: {0}})
	stmt, _ := sqlparse.Parse(`SELECT A.id FROM A, B, C WHERE A.fb = B.id AND B.fc = C.id AND C.h = 1`)
	q, err := query.Resolve(sch, stmt.(*sqlparse.Select), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(q); err == nil {
		t.Fatal("dangling reference evaluated")
	}
}
