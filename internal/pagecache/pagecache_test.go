package pagecache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUHitMissEvict(t *testing.T) {
	c := New(100, NewLRU())
	st := c.Stamp(nil)
	if !c.Put("a", "A", 40, nil, st) || !c.Put("b", "B", 40, nil, st) {
		t.Fatal("puts should store")
	}
	if v, ok := c.Get("a"); !ok || v != "A" {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting 40 more bytes evicts it.
	if !c.Put("c", "C", 40, nil, st) {
		t.Fatal("Put(c) should store")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Bytes != 80 || s.Policy != "lru" {
		t.Fatalf("stats = %+v", s)
	}
}

func TestClockSecondChance(t *testing.T) {
	c := New(100, NewClock())
	st := c.Stamp(nil)
	c.Put("a", "A", 40, nil, st)
	c.Put("b", "B", 40, nil, st)
	// Touch a so its reference bit is set; the clock sweep must give it a
	// second chance and evict b (ref bit cleared on the first rotation).
	c.Get("a")
	// Clear both ref bits then re-reference a only.
	if !c.Put("c", "C", 40, nil, st) {
		t.Fatal("Put(c) should store")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Policy != "clock" {
		t.Fatalf("stats = %+v", s)
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be resident")
	}
}

func TestPinnedFramesSurviveEviction(t *testing.T) {
	c := New(100, NewLRU())
	st := c.Stamp(nil)
	c.Put("pinned", "P", 60, nil, st)
	_, release, ok := c.Acquire("pinned")
	if !ok {
		t.Fatal("Acquire should hit")
	}
	// Needs 60 bytes freed but the only candidate is pinned: Put refuses
	// rather than overfilling.
	if c.Put("big", "B", 60, nil, st) {
		t.Fatal("Put should refuse when every victim is pinned")
	}
	if _, ok := c.Get("pinned"); !ok {
		t.Fatal("pinned frame must not be evicted")
	}
	release()
	release() // idempotent
	if !c.Put("big", "B", 60, nil, st) {
		t.Fatal("Put should succeed once the pin is released")
	}
	if _, ok := c.Get("pinned"); ok {
		t.Fatal("unpinned frame should now be evictable")
	}
}

func TestShardInvalidation(t *testing.T) {
	c := New(1000, nil)
	st0 := c.Stamp([]int{0})
	st1 := c.Stamp([]int{1})
	c.Put("q0", "v0", 10, []int{0}, st0)
	c.Put("q1", "v1", 10, []int{1}, st1)
	c.BumpShard(0)
	if _, ok := c.Get("q0"); ok {
		t.Fatal("shard-0 frame should be swept by BumpShard(0)")
	}
	if _, ok := c.Get("q1"); !ok {
		t.Fatal("shard-1 frame should survive BumpShard(0)")
	}
	// A stamp taken before the bump can no longer store.
	if c.Put("q0", "stale", 10, []int{0}, st0) {
		t.Fatal("stale stamp must not store")
	}
	if c.Version(0) != 1 || c.Version(1) != 0 {
		t.Fatalf("versions = %d, %d", c.Version(0), c.Version(1))
	}
	c.Bump()
	if _, ok := c.Get("q1"); ok {
		t.Fatal("wholesale Bump should drop everything")
	}
}

func TestZeroCapacityNeverStores(t *testing.T) {
	c := New(0, nil)
	if c.Put("k", "v", 1, nil, c.Stamp(nil)) {
		t.Fatal("zero-capacity pool must not store")
	}
}

// TestConcurrentHitEvictInvalidate hammers one pool from 16 goroutines
// mixing hits, pinned reads, stores, evictions and shard bumps; run
// under -race it checks the locking discipline, and the final byte
// accounting must still be internally consistent.
func TestConcurrentHitEvictInvalidate(t *testing.T) {
	for _, pol := range []Policy{NewLRU(), NewClock()} {
		c := New(1<<12, pol)
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 400; i++ {
					key := fmt.Sprintf("k%d", (g*7+i)%64)
					shard := g % 4
					switch i % 5 {
					case 0:
						st := c.Stamp([]int{shard})
						c.Put(key, i, 128, []int{shard}, st)
					case 1:
						c.Get(key)
					case 2:
						if _, rel, ok := c.Acquire(key); ok {
							c.Get(fmt.Sprintf("k%d", i%64))
							rel()
						}
					case 3:
						if i%40 == 3 {
							c.BumpShard(shard)
						}
					default:
						c.Stats()
					}
				}
			}(g)
		}
		wg.Wait()
		s := c.Stats()
		if s.Bytes < 0 || s.Bytes > s.CapacityBytes {
			t.Fatalf("%s: bytes %d out of [0, %d]", s.Policy, s.Bytes, s.CapacityBytes)
		}
		if int64(s.Entries)*128 != s.Bytes {
			t.Fatalf("%s: %d entries × 128 ≠ %d bytes", s.Policy, s.Entries, s.Bytes)
		}
	}
}
