// Package pagecache is the untrusted-side buffer pool: a byte-bounded
// frame cache one level below the result cache, holding (a) encoded
// visible-column runs and (b) already-revealed Vis id-list/value runs,
// keyed on canonical per-table predicate text so repeated and
// multi-pass executions skip recompute, re-encoding and — paired with
// the token-side retained spools in internal/exec — re-shipping over
// the bus.
//
// Security invariant (why this cache is leak-free by construction):
// every cached value is a pure function of (i) the visible partition,
// which the untrusted side holds in full by definition, and (ii) the
// canonical query text, which is the one thing GhostDB's model already
// reveals (§1 of the paper). The cache key is that text restricted to
// one table; hit-or-miss is therefore a pure function of the public
// query history plus committed-write versions — an observer of the
// query stream can predict every hit, so hits reveal nothing new. This
// is the PR 4 result-cache argument, one level lower.
//
// Invalidation reuses the per-shard version-vector machinery of
// internal/cache: every committed write bumps the version of exactly
// the shard it touched, and frames are stamped with the versions of the
// shards their keys span. Versions advance only on statements the
// untrusted side itself submitted, so neither stamps nor sweeps depend
// on hidden data.
//
// RAM invariant: frames live in untrusted host RAM and are never
// charged against the secure chip's 64KB budget — the point is to spend
// plentiful untrusted memory to save scarce secure resources (token
// RAM, flash I/O, the USB link).
//
// Values are opaque and shared between all readers; holders MUST treat
// them as immutable. Frames can be pinned (Acquire) while a reader
// drains them; pinned frames are never evicted, matching the classic
// buffer-pool-manager discipline.
package pagecache

import (
	"container/list"
	"sync"
)

// Stats is a snapshot of the pool's counters.
type Stats struct {
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	CapacityBytes int64  `json:"capacity_bytes"`
	Policy        string `json:"policy"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Stores        uint64 `json:"stores"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	// PinSkips counts eviction attempts that had to pass over a pinned
	// frame (a liveness, not correctness, signal).
	PinSkips uint64 `json:"pin_skips"`
}

// frame is one cached run, stamped like a result-cache entry: stamp[0]
// is the wholesale epoch, stamp[i+1] the version of shards[i].
type frame struct {
	key    string
	val    any
	size   int64
	pins   int
	shards []int
	stamp  []uint64
}

// Policy orders frames for eviction. Implementations are not
// goroutine-safe on their own; the Cache calls them under its lock.
type Policy interface {
	// Name identifies the policy in Stats ("lru", "clock").
	Name() string
	// Inserted registers a new key.
	Inserted(key string)
	// Touched records a hit on key.
	Touched(key string)
	// Removed forgets key (eviction or invalidation).
	Removed(key string)
	// Victim proposes the next key to evict, skipping keys for which
	// skip returns true (pinned frames). ok is false when every
	// remaining frame is pinned.
	Victim(skip func(key string) bool) (key string, ok bool)
}

// lruPolicy evicts the least-recently-used unpinned frame.
type lruPolicy struct {
	ll  *list.List // front = most recently used; values are string keys
	pos map[string]*list.Element
}

// NewLRU returns the least-recently-used eviction policy.
func NewLRU() Policy {
	return &lruPolicy{ll: list.New(), pos: make(map[string]*list.Element)}
}

func (p *lruPolicy) Name() string { return "lru" }

func (p *lruPolicy) Inserted(key string) { p.pos[key] = p.ll.PushFront(key) }

func (p *lruPolicy) Touched(key string) {
	if el, ok := p.pos[key]; ok {
		p.ll.MoveToFront(el)
	}
}

func (p *lruPolicy) Removed(key string) {
	if el, ok := p.pos[key]; ok {
		p.ll.Remove(el)
		delete(p.pos, key)
	}
}

func (p *lruPolicy) Victim(skip func(string) bool) (string, bool) {
	for el := p.ll.Back(); el != nil; el = el.Prev() {
		key := el.Value.(string)
		if !skip(key) {
			return key, true
		}
	}
	return "", false
}

// clockEntry is one slot in the clock sweep.
type clockEntry struct {
	key string
	ref bool
}

// clockPolicy is second-chance eviction: a sweep hand clears reference
// bits and evicts the first unreferenced, unpinned frame.
type clockPolicy struct {
	ring []*clockEntry
	pos  map[string]int
	hand int
}

// NewClock returns the clock (second-chance) eviction policy.
func NewClock() Policy {
	return &clockPolicy{pos: make(map[string]int)}
}

func (p *clockPolicy) Name() string { return "clock" }

func (p *clockPolicy) Inserted(key string) {
	p.pos[key] = len(p.ring)
	p.ring = append(p.ring, &clockEntry{key: key, ref: true})
}

func (p *clockPolicy) Touched(key string) {
	if i, ok := p.pos[key]; ok {
		p.ring[i].ref = true
	}
}

func (p *clockPolicy) Removed(key string) {
	i, ok := p.pos[key]
	if !ok {
		return
	}
	last := len(p.ring) - 1
	p.ring[i] = p.ring[last]
	p.pos[p.ring[i].key] = i
	p.ring = p.ring[:last]
	delete(p.pos, key)
	if p.hand > last {
		p.hand = 0
	}
}

func (p *clockPolicy) Victim(skip func(string) bool) (string, bool) {
	n := len(p.ring)
	if n == 0 {
		return "", false
	}
	// Two full rotations suffice: the first clears every reference bit,
	// so the second must find a victim unless every frame is pinned.
	for sweep := 0; sweep < 2*n; sweep++ {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		e := p.ring[p.hand]
		p.hand++
		if skip(e.key) {
			continue
		}
		if e.ref {
			e.ref = false
			continue
		}
		return e.key, true
	}
	return "", false
}

// Cache is the byte-bounded frame pool. All methods are safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	cap      int64
	bytes    int64
	frames   map[string]*frame
	pol      Policy
	versions []uint64 // per-shard data versions, grown on demand
	epoch    uint64   // wholesale-invalidation epoch (Bump)

	hits, misses, stores, evictions, invalidations, pinSkips uint64
}

// New creates a pool bounded to capBytes of cached runs (sizes are
// caller-reported). A nil policy defaults to LRU. capBytes <= 0 yields
// a pool that never stores.
func New(capBytes int64, pol Policy) *Cache {
	if pol == nil {
		pol = NewLRU()
	}
	return &Cache{cap: capBytes, frames: make(map[string]*frame), pol: pol}
}

// normShards defaults a nil/empty shard set to shard 0.
func normShards(shards []int) []int {
	if len(shards) == 0 {
		return []int{0}
	}
	return shards
}

func (c *Cache) verLocked(shard int) uint64 {
	if shard >= 0 && shard < len(c.versions) {
		return c.versions[shard]
	}
	return 0
}

func (c *Cache) stampLocked(shards []int) []uint64 {
	out := make([]uint64, len(shards)+1)
	out[0] = c.epoch
	for i, s := range shards {
		out[i+1] = c.verLocked(s)
	}
	return out
}

// Stamp snapshots the version vector restricted to the given shards;
// pass the result to Put so a run encoded before a racing committed
// write can never be stored.
func (c *Cache) Stamp(shards []int) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stampLocked(normShards(shards))
}

func (c *Cache) freshLocked(shards []int, stamp []uint64) bool {
	if len(stamp) != len(shards)+1 || stamp[0] != c.epoch {
		return false
	}
	for i, s := range shards {
		if stamp[i+1] != c.verLocked(s) {
			return false
		}
	}
	return true
}

// Version returns one shard's current data version (0 for shards never
// bumped). Token-side retained state compares against this to decide
// whether a header-only re-ship is still valid.
func (c *Cache) Version(shard int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verLocked(shard)
}

// Bump invalidates every frame regardless of shard (wholesale).
func (c *Cache) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	c.invalidations++
	for key := range c.frames {
		c.pol.Removed(key)
	}
	clear(c.frames)
	c.bytes = 0
}

// BumpShard advances one shard's data version after a committed write,
// eagerly sweeping the frames whose keys touch that shard. Pinned
// frames are removed from the index too — current holders keep their
// (immutable, pre-write) value, but no later lookup can observe it.
func (c *Cache) BumpShard(shard int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 {
		shard = 0
	}
	for shard >= len(c.versions) {
		c.versions = append(c.versions, 0)
	}
	c.versions[shard]++
	c.invalidations++
	for key, f := range c.frames {
		for _, s := range f.shards {
			if s == shard {
				c.removeLocked(key, f)
				break
			}
		}
	}
}

// Get returns the cached run for key, if still fresh.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.getLocked(key)
	if !ok {
		return nil, false
	}
	return f.val, true
}

// Acquire is Get with a pin: the returned release func must be called
// when the caller is done draining the run, and until then the frame
// cannot be evicted (it can still be invalidated — the holder keeps its
// immutable value, later lookups miss).
func (c *Cache) Acquire(key string) (val any, release func(), ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, hit := c.getLocked(key)
	if !hit {
		return nil, nil, false
	}
	f.pins++
	var once sync.Once
	release = func() {
		once.Do(func() {
			c.mu.Lock()
			f.pins--
			c.mu.Unlock()
		})
	}
	return f.val, release, true
}

func (c *Cache) getLocked(key string) (*frame, bool) {
	f, ok := c.frames[key]
	if !ok {
		c.misses++
		return nil, false
	}
	if !c.freshLocked(f.shards, f.stamp) {
		// Stale under a racing bump; bumps sweep eagerly, so this is only
		// a belt-and-suspenders check.
		c.removeLocked(key, f)
		c.misses++
		return nil, false
	}
	c.pol.Touched(key)
	c.hits++
	return f, true
}

// Put stores val under key, stamped with the version vector the caller
// observed (via Stamp) before encoding it; a stale stamp drops the
// value. Returns whether the value was stored.
func (c *Cache) Put(key string, val any, size int64, shards []int, stamp []uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	shards = normShards(shards)
	if !c.freshLocked(shards, stamp) || size > c.cap || size < 0 {
		return false
	}
	if old, ok := c.frames[key]; ok {
		c.removeLocked(key, old) // replacement, not counted as an eviction
	}
	for c.bytes+size > c.cap {
		victim, ok := c.pol.Victim(func(k string) bool {
			f := c.frames[k]
			if f != nil && f.pins > 0 {
				c.pinSkips++
				return true
			}
			return false
		})
		if !ok {
			return false // everything left is pinned; don't overfill
		}
		c.removeLocked(victim, c.frames[victim])
		c.evictions++
	}
	c.frames[key] = &frame{key: key, val: val, size: size,
		shards: append([]int(nil), shards...), stamp: append([]uint64(nil), stamp...)}
	c.pol.Inserted(key)
	c.bytes += size
	c.stores++
	return true
}

func (c *Cache) removeLocked(key string, f *frame) {
	delete(c.frames, key)
	c.pol.Removed(key)
	c.bytes -= f.size
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       len(c.frames),
		Bytes:         c.bytes,
		CapacityBytes: c.cap,
		Policy:        c.pol.Name(),
		Hits:          c.hits,
		Misses:        c.misses,
		Stores:        c.stores,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		PinSkips:      c.pinSkips,
	}
}
