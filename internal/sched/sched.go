// Package sched turns GhostDB into a multi-client engine over one
// simulated secure token. The paper's platform is mono-user (§2.3): the
// key has a single tiny RAM budget and a serial flash/bus pipeline, so
// concurrency cannot mean "run two queries' I/O at once" — it means
// admitting several query sessions against the one budget and
// multiplexing the token between them without livelock, starvation or
// partial holds.
//
// The design follows the up-front-grant pattern of enclave query engines
// (ObliDB sizes every operator from a per-query memory grant): admission
// gives a session its whole RAM allotment atomically, as one elastic
// reservation in [MinBuffers, WantBuffers] on the shared ram.Manager, and
// the session then runs its operators against a private sub-budget of
// exactly that size. Two consequences:
//
//   - No mid-query RAM starvation: once admitted, a query's behaviour
//     (operator pass counts, and therefore its simulated cost) depends
//     only on its own grant, never on what other sessions do.
//   - No partial holds: a query either receives all its minimums or
//     remains queued; it can never camp on half its memory and deadlock
//     against another half-holder.
//
// Admission is strictly FIFO (head-of-line): a request that cannot be
// admitted blocks every request behind it. That is deliberate — it is
// the no-starvation guarantee. Because every session eventually releases
// its grant, the head's minimum (validated against the total budget at
// enqueue time) is eventually satisfiable, so the queue always drains.
//
// Execution on the simulated hardware stays serial: a session wraps its
// flash/bus work in Exclusive, which holds the token's single execution
// slot. Per-query counters therefore see only their own I/O and the
// simulated timings stay deterministic per query.
//
// FIFO admission guarantees no starvation, but under sustained
// open-loop overload (arrivals beyond the token's service rate) it also
// guarantees an unbounded queue. SetShedPolicy bounds the damage: once
// the predicted admission wait exceeds the configured limit, new
// requests are rejected at arrival with ErrOverloaded — holding nothing
// — so admitted queries keep bounded latency and overload becomes an
// explicit, countable signal instead of a silent latency cliff.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ghostdb/internal/ram"
)

// ErrNeverAdmissible marks a request whose minimum exceeds the total
// budget: it is rejected at admission time, before the query has run at
// all. The error also wraps ram.ErrExhausted, so callers treating every
// RAM shortage alike keep working; callers that care can distinguish a
// clean up-front denial from a mid-run exhaustion.
var ErrNeverAdmissible = errors.New("sched: session minimum exceeds the budget")

// ErrOverloaded marks a request shed at arrival because the scheduler
// predicted its admission-queue wait would exceed the configured bound
// (SetShedPolicy). Shedding keeps overload visible and bounded: under
// open-loop traffic beyond the token's capacity the queue would
// otherwise grow without limit and every query's latency with it.
// Rejected requests held nothing — no RAM, no queue slot.
var ErrOverloaded = errors.New("sched: overloaded, predicted queue wait exceeds the bound")

// Request declares a session's RAM needs in whole buffers: at least Min
// (admission blocks until Min is free), up to Want (the elastic top-up
// taken when the budget allows).
type Request struct {
	MinBuffers  int
	WantBuffers int
	// Unsheddable exempts the request from load shedding — set by
	// internal maintenance sessions (background compaction) that must
	// run precisely when the engine is busiest.
	Unsheddable bool
}

// Scheduler admits query sessions against one ram.Manager with a bounded
// number in flight, and owns the secure token's serial execution slot.
type Scheduler struct {
	ram *ram.Manager
	max int

	// token is the secure key's single execution slot (capacity 1). A
	// channel rather than a mutex so waiting for it can be abandoned on
	// context cancellation.
	token chan struct{}

	mu       sync.Mutex
	queue    []*waiter
	running  int
	admitted uint64 // admission sequence, for fairness assertions
	leaks    int    // sessions released with outstanding sub-grants
	onAdmit  func(wait time.Duration, grantBuffers int)

	maxWait time.Duration // shed bound; 0 disables shedding
	avgSlot time.Duration // EWMA of Exclusive hold times, the wait predictor
	sheds   uint64        // requests rejected with ErrOverloaded
}

type waiter struct {
	req   Request
	enq   time.Time     // when the request joined the queue
	ready chan *Session // buffered(1); receives the admitted session
}

// New creates a scheduler over the shared budget admitting at most
// maxConcurrent sessions at a time (values below 1 are clamped to 1).
func New(m *ram.Manager, maxConcurrent int) *Scheduler {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	s := &Scheduler{ram: m, max: maxConcurrent, token: make(chan struct{}, 1)}
	s.token <- struct{}{}
	return s
}

// MaxConcurrent returns the in-flight session bound.
func (s *Scheduler) MaxConcurrent() int { return s.max }

// Running returns the number of admitted, unreleased sessions.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// QueueLen returns the number of requests waiting for admission.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Leaks counts sessions that were released while their private budget
// still held grants — operator bookkeeping bugs surfaced for tests.
func (s *Scheduler) Leaks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaks
}

// SetAdmitObserver registers fn to be called at every admission with
// the wall-clock time the request spent in the queue and the buffers it
// was granted — the feed for queue-wait histograms and admission
// counters. Both values are scheduling bookkeeping over plan-derived
// floors: functions of query text and engine load, never of hidden
// data. fn runs under the scheduler's lock, so it must be fast and must
// not call back into the scheduler; set it once at engine construction,
// before traffic.
func (s *Scheduler) SetAdmitObserver(fn func(wait time.Duration, grantBuffers int)) {
	s.mu.Lock()
	s.onAdmit = fn
	s.mu.Unlock()
}

// SetShedPolicy bounds the admission-queue wait: an arriving request
// whose predicted wait exceeds maxWait is rejected immediately with
// ErrOverloaded instead of joining the queue. 0 (the default) disables
// shedding. The prediction is the scheduler's own bookkeeping — queue
// depth, running sessions, an EWMA of execution-slot hold times, and
// the age of the queue head — so overload detection costs no extra
// coordination and never consults query data.
func (s *Scheduler) SetShedPolicy(maxWait time.Duration) {
	s.mu.Lock()
	s.maxWait = maxWait
	s.mu.Unlock()
}

// Sheds counts requests rejected with ErrOverloaded since construction.
func (s *Scheduler) Sheds() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sheds
}

// predictedWaitLocked estimates how long a request arriving now would
// sit in the admission queue: everyone already queued or running will
// hold the serial execution slot for ~avgSlot each, and FIFO order
// means a new arrival cannot be admitted before the current head — so
// the head's age is a lower bound once the queue has stopped draining.
func (s *Scheduler) predictedWaitLocked() time.Duration {
	pred := time.Duration(len(s.queue)+s.running) * s.avgSlot
	if len(s.queue) > 0 {
		if age := time.Since(s.queue[0].enq); age > pred {
			pred = age
		}
	}
	return pred
}

// noteSlotHold feeds one Exclusive hold duration into the shed
// predictor's EWMA (alpha 1/4: jumpy enough to track load shifts,
// smooth enough to ignore one odd query).
func (s *Scheduler) noteSlotHold(d time.Duration) {
	s.mu.Lock()
	if s.avgSlot == 0 {
		s.avgSlot = d
	} else {
		s.avgSlot = (3*s.avgSlot + d) / 4
	}
	s.mu.Unlock()
}

// Acquire blocks until the request is admitted (FIFO order) or the
// context is cancelled. A cancelled request leaves the scheduler exactly
// as it found it: nothing reserved, nothing held, and the queue pumped so
// later requests are not blocked by the vacancy. When a shed policy is
// set, a request predicted to wait longer than the bound fails fast
// with ErrOverloaded instead of queueing.
func (s *Scheduler) Acquire(ctx context.Context, req Request) (*Session, error) {
	if req.MinBuffers < 1 {
		req.MinBuffers = 1
	}
	if req.WantBuffers < req.MinBuffers {
		req.WantBuffers = req.MinBuffers
	}
	if total := s.ram.Buffers(); req.MinBuffers > total {
		return nil, fmt.Errorf("sched: session minimum %d buffers exceeds the %d-buffer budget: %w (%w)",
			req.MinBuffers, total, ErrNeverAdmissible, ram.ErrExhausted)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w := &waiter{req: req, enq: time.Now(), ready: make(chan *Session, 1)}
	s.mu.Lock()
	if s.maxWait > 0 && !req.Unsheddable {
		if wait := s.predictedWaitLocked(); wait > s.maxWait {
			s.sheds++
			s.mu.Unlock()
			return nil, fmt.Errorf("sched: predicted queue wait %v exceeds the %v bound: %w",
				wait.Round(time.Microsecond), s.maxWait, ErrOverloaded)
		}
	}
	s.queue = append(s.queue, w)
	s.pumpLocked()
	s.mu.Unlock()

	select {
	case sess := <-w.ready:
		return sess, nil
	case <-ctx.Done():
		s.mu.Lock()
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				// Removing a waiter can unblock the ones behind it when
				// it was the head whose minimum did not fit.
				s.pumpLocked()
				s.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		s.mu.Unlock()
		// Not queued anymore: admission raced the cancellation. The
		// session is (or is about to be) in the ready channel; take it
		// and hand it straight back.
		sess := <-w.ready
		sess.Release()
		return nil, ctx.Err()
	}
}

// pumpLocked admits from the head of the queue while slots and minimums
// allow. Strictly head-of-line: the first request that does not fit
// stops admission, so no later request can starve an earlier one.
func (s *Scheduler) pumpLocked() {
	for len(s.queue) > 0 && s.running < s.max {
		w := s.queue[0]
		g, err := s.ram.ReserveBuffers(w.req.MinBuffers, w.req.WantBuffers)
		if err != nil {
			return // head waits for a release; everyone behind waits too
		}
		s.queue = s.queue[1:]
		s.running++
		s.admitted++
		if s.onAdmit != nil {
			s.onAdmit(time.Since(w.enq), g.Buffers())
		}
		sess := &Session{
			s:     s,
			grant: g,
			seq:   s.admitted,
			priv:  ram.NewManager(g.Bytes(), s.ram.BufferSize()),
		}
		w.ready <- sess
	}
}

// Session is one admitted query's handle: a private RAM budget carved out
// of the shared manager, a fairness sequence number, and access to the
// token's serial execution slot.
type Session struct {
	s     *Scheduler
	grant *ram.Grant
	priv  *ram.Manager
	seq   uint64

	mu       sync.Mutex
	released bool
}

// RAM returns the session's private budget. Operators reserve from it
// exactly as they would from the global manager; its size is fixed at
// admission, so the query's RAM behaviour is isolated from other
// sessions.
func (sess *Session) RAM() *ram.Manager { return sess.priv }

// Buffers returns the session's granted budget in whole buffers.
func (sess *Session) Buffers() int { return sess.grant.Buffers() }

// Seq returns the admission sequence number (1, 2, ... in admission
// order); tests use it to assert FIFO fairness.
func (sess *Session) Seq() uint64 { return sess.seq }

// Exclusive runs fn holding the secure token's single execution slot,
// serializing all simulated flash/bus access across sessions. The wait
// for the slot can be abandoned via ctx; once fn starts it runs to
// completion (the simulation is synchronous).
func (sess *Session) Exclusive(ctx context.Context, fn func() error) error {
	select {
	case <-sess.s.token:
	case <-ctx.Done():
		return ctx.Err()
	}
	start := time.Now()
	defer func() {
		sess.s.noteSlotHold(time.Since(start))
		sess.s.token <- struct{}{}
	}()
	return fn()
}

// Release returns the session's grant to the shared budget and admits
// queued requests. Idempotent. A release with outstanding sub-grants in
// the private budget is counted as a leak (the shared budget is still
// made whole — the private manager is only bookkeeping).
func (sess *Session) Release() {
	sess.mu.Lock()
	if sess.released {
		sess.mu.Unlock()
		return
	}
	sess.released = true
	sess.mu.Unlock()

	leaked := sess.priv.Leaked()
	sess.grant.Release()
	s := sess.s
	s.mu.Lock()
	if leaked {
		s.leaks++
	}
	s.running--
	s.pumpLocked()
	s.mu.Unlock()
}
