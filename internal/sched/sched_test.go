package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ghostdb/internal/ram"
)

const bufSize = 2048

func newSched(t *testing.T, buffers, maxConcurrent int) (*Scheduler, *ram.Manager) {
	t.Helper()
	m := ram.NewManager(buffers*bufSize, bufSize)
	return New(m, maxConcurrent), m
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionIsElastic(t *testing.T) {
	s, m := newSched(t, 10, 4)
	a, err := s.Acquire(context.Background(), Request{MinBuffers: 2, WantBuffers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Buffers() != 6 {
		t.Fatalf("first grant = %d buffers, want 6", a.Buffers())
	}
	b, err := s.Acquire(context.Background(), Request{MinBuffers: 2, WantBuffers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if b.Buffers() != 4 {
		t.Fatalf("second grant = %d buffers, want the 4 left", b.Buffers())
	}
	// The private budgets mirror the grants exactly.
	if b.RAM().Buffers() != 4 || b.RAM().BufferSize() != bufSize {
		t.Fatalf("private manager = %d x %d", b.RAM().Buffers(), b.RAM().BufferSize())
	}
	a.Release()
	b.Release()
	if m.InUse() != 0 || m.Leaked() {
		t.Fatalf("budget not restored: inuse=%d", m.InUse())
	}
}

func TestImpossibleMinimumFailsFast(t *testing.T) {
	s, _ := newSched(t, 4, 2)
	_, err := s.Acquire(context.Background(), Request{MinBuffers: 5, WantBuffers: 5})
	if !errors.Is(err, ram.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestFIFOAdmissionOrder(t *testing.T) {
	const waiters = 10
	s, m := newSched(t, 32, waiters)
	hog, err := s.Acquire(context.Background(), Request{MinBuffers: 32, WantBuffers: 32})
	if err != nil {
		t.Fatal(err)
	}

	// Enqueue waiters one at a time so their queue order is known.
	seqs := make([]uint64, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := s.Acquire(context.Background(), Request{MinBuffers: 2, WantBuffers: 3})
			if err != nil {
				t.Error(err)
				return
			}
			seqs[i] = sess.Seq()
			sess.Release()
		}()
		waitFor(t, "waiter enqueued", func() bool { return s.QueueLen() == i+1 })
	}

	hog.Release()
	wg.Wait()
	for i := 1; i < waiters; i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("admission order violates FIFO: seqs = %v", seqs)
		}
	}
	if m.InUse() != 0 || s.Leaks() != 0 {
		t.Fatalf("inuse=%d leaks=%d after drain", m.InUse(), s.Leaks())
	}
}

func TestConcurrencyLimitBoundsInFlight(t *testing.T) {
	s, _ := newSched(t, 32, 2)
	a, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *Session, 1)
	go func() {
		sess, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
		if err != nil {
			t.Error(err)
			return
		}
		admitted <- sess
	}()
	waitFor(t, "third request queued", func() bool { return s.QueueLen() == 1 })
	select {
	case <-admitted:
		t.Fatal("third session admitted beyond the concurrency limit")
	case <-time.After(20 * time.Millisecond):
	}
	a.Release()
	sess := <-admitted
	sess.Release()
	b.Release()
	if got := s.Running(); got != 0 {
		t.Fatalf("running = %d after drain", got)
	}
}

func TestCancelledQueuedRequestReleasesNothing(t *testing.T) {
	s, m := newSched(t, 8, 4)
	hog, err := s.Acquire(context.Background(), Request{MinBuffers: 8, WantBuffers: 8})
	if err != nil {
		t.Fatal(err)
	}
	inUseBefore := m.InUse()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, Request{MinBuffers: 2, WantBuffers: 2})
		errc <- err
	}()
	waitFor(t, "request queued", func() bool { return s.QueueLen() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.QueueLen() != 0 {
		t.Fatal("cancelled request still queued")
	}
	if m.InUse() != inUseBefore {
		t.Fatalf("cancelled request changed the budget: %d -> %d", inUseBefore, m.InUse())
	}

	// The vacancy must not wedge the queue: a later request still admits.
	hog.Release()
	sess, err := s.Acquire(context.Background(), Request{MinBuffers: 2, WantBuffers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess.Release()
	if m.InUse() != 0 || m.Leaked() {
		t.Fatalf("inuse=%d after drain", m.InUse())
	}
}

func TestCancelBehindBlockedHeadUnblocksQueue(t *testing.T) {
	s, m := newSched(t, 8, 4)
	hog, err := s.Acquire(context.Background(), Request{MinBuffers: 6, WantBuffers: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Head needs more than is free; the request behind it would fit but
	// must wait (strict FIFO).
	ctx, cancel := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, Request{MinBuffers: 4, WantBuffers: 4})
		headErr <- err
	}()
	waitFor(t, "head queued", func() bool { return s.QueueLen() == 1 })
	admitted := make(chan *Session, 1)
	go func() {
		sess, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
		if err != nil {
			t.Error(err)
			return
		}
		admitted <- sess
	}()
	waitFor(t, "second queued", func() bool { return s.QueueLen() == 2 })
	select {
	case <-admitted:
		t.Fatal("request overtook a blocked head (FIFO violated)")
	case <-time.After(20 * time.Millisecond):
	}
	// Cancelling the blocked head must let the fitting request through.
	cancel()
	if err := <-headErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("head err = %v", err)
	}
	sess := <-admitted
	sess.Release()
	hog.Release()
	if m.InUse() != 0 {
		t.Fatalf("inuse=%d after drain", m.InUse())
	}
}

func TestExclusiveSerializesExecution(t *testing.T) {
	s, _ := newSched(t, 32, 8)
	var inside, overlaps atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Release()
			for j := 0; j < 50; j++ {
				err := sess.Exclusive(context.Background(), func() error {
					if inside.Add(1) != 1 {
						overlaps.Add(1)
					}
					inside.Add(-1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := overlaps.Load(); n != 0 {
		t.Fatalf("%d overlapping Exclusive sections", n)
	}
}

func TestExclusiveWaitIsCancellable(t *testing.T) {
	s, _ := newSched(t, 32, 4)
	holder, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Release()
	other, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Release()

	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = holder.Exclusive(context.Background(), func() error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := other.Exclusive(ctx, func() error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestReleaseCountsPrivateLeaks(t *testing.T) {
	s, m := newSched(t, 8, 2)
	sess, err := s.Acquire(context.Background(), Request{MinBuffers: 4, WantBuffers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RAM().ReserveBuffers(1, 1); err != nil {
		t.Fatal(err)
	}
	sess.Release()
	sess.Release() // idempotent
	if s.Leaks() != 1 {
		t.Fatalf("leaks = %d, want 1", s.Leaks())
	}
	// The shared budget is still made whole.
	if m.InUse() != 0 || m.Leaked() {
		t.Fatalf("shared budget not restored: inuse=%d", m.InUse())
	}
}
