package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ghostdb/internal/ram"
)

const bufSize = 2048

func newSched(t *testing.T, buffers, maxConcurrent int) (*Scheduler, *ram.Manager) {
	t.Helper()
	m := ram.NewManager(buffers*bufSize, bufSize)
	return New(m, maxConcurrent), m
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionIsElastic(t *testing.T) {
	s, m := newSched(t, 10, 4)
	a, err := s.Acquire(context.Background(), Request{MinBuffers: 2, WantBuffers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Buffers() != 6 {
		t.Fatalf("first grant = %d buffers, want 6", a.Buffers())
	}
	b, err := s.Acquire(context.Background(), Request{MinBuffers: 2, WantBuffers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if b.Buffers() != 4 {
		t.Fatalf("second grant = %d buffers, want the 4 left", b.Buffers())
	}
	// The private budgets mirror the grants exactly.
	if b.RAM().Buffers() != 4 || b.RAM().BufferSize() != bufSize {
		t.Fatalf("private manager = %d x %d", b.RAM().Buffers(), b.RAM().BufferSize())
	}
	a.Release()
	b.Release()
	if m.InUse() != 0 || m.Leaked() {
		t.Fatalf("budget not restored: inuse=%d", m.InUse())
	}
}

func TestImpossibleMinimumFailsFast(t *testing.T) {
	s, _ := newSched(t, 4, 2)
	_, err := s.Acquire(context.Background(), Request{MinBuffers: 5, WantBuffers: 5})
	if !errors.Is(err, ram.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestFIFOAdmissionOrder(t *testing.T) {
	const waiters = 10
	s, m := newSched(t, 32, waiters)
	hog, err := s.Acquire(context.Background(), Request{MinBuffers: 32, WantBuffers: 32})
	if err != nil {
		t.Fatal(err)
	}

	// Enqueue waiters one at a time so their queue order is known.
	seqs := make([]uint64, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := s.Acquire(context.Background(), Request{MinBuffers: 2, WantBuffers: 3})
			if err != nil {
				t.Error(err)
				return
			}
			seqs[i] = sess.Seq()
			sess.Release()
		}()
		waitFor(t, "waiter enqueued", func() bool { return s.QueueLen() == i+1 })
	}

	hog.Release()
	wg.Wait()
	for i := 1; i < waiters; i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("admission order violates FIFO: seqs = %v", seqs)
		}
	}
	if m.InUse() != 0 || s.Leaks() != 0 {
		t.Fatalf("inuse=%d leaks=%d after drain", m.InUse(), s.Leaks())
	}
}

func TestConcurrencyLimitBoundsInFlight(t *testing.T) {
	s, _ := newSched(t, 32, 2)
	a, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *Session, 1)
	go func() {
		sess, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
		if err != nil {
			t.Error(err)
			return
		}
		admitted <- sess
	}()
	waitFor(t, "third request queued", func() bool { return s.QueueLen() == 1 })
	select {
	case <-admitted:
		t.Fatal("third session admitted beyond the concurrency limit")
	case <-time.After(20 * time.Millisecond):
	}
	a.Release()
	sess := <-admitted
	sess.Release()
	b.Release()
	if got := s.Running(); got != 0 {
		t.Fatalf("running = %d after drain", got)
	}
}

func TestCancelledQueuedRequestReleasesNothing(t *testing.T) {
	s, m := newSched(t, 8, 4)
	hog, err := s.Acquire(context.Background(), Request{MinBuffers: 8, WantBuffers: 8})
	if err != nil {
		t.Fatal(err)
	}
	inUseBefore := m.InUse()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, Request{MinBuffers: 2, WantBuffers: 2})
		errc <- err
	}()
	waitFor(t, "request queued", func() bool { return s.QueueLen() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.QueueLen() != 0 {
		t.Fatal("cancelled request still queued")
	}
	if m.InUse() != inUseBefore {
		t.Fatalf("cancelled request changed the budget: %d -> %d", inUseBefore, m.InUse())
	}

	// The vacancy must not wedge the queue: a later request still admits.
	hog.Release()
	sess, err := s.Acquire(context.Background(), Request{MinBuffers: 2, WantBuffers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess.Release()
	if m.InUse() != 0 || m.Leaked() {
		t.Fatalf("inuse=%d after drain", m.InUse())
	}
}

func TestCancelBehindBlockedHeadUnblocksQueue(t *testing.T) {
	s, m := newSched(t, 8, 4)
	hog, err := s.Acquire(context.Background(), Request{MinBuffers: 6, WantBuffers: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Head needs more than is free; the request behind it would fit but
	// must wait (strict FIFO).
	ctx, cancel := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, Request{MinBuffers: 4, WantBuffers: 4})
		headErr <- err
	}()
	waitFor(t, "head queued", func() bool { return s.QueueLen() == 1 })
	admitted := make(chan *Session, 1)
	go func() {
		sess, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
		if err != nil {
			t.Error(err)
			return
		}
		admitted <- sess
	}()
	waitFor(t, "second queued", func() bool { return s.QueueLen() == 2 })
	select {
	case <-admitted:
		t.Fatal("request overtook a blocked head (FIFO violated)")
	case <-time.After(20 * time.Millisecond):
	}
	// Cancelling the blocked head must let the fitting request through.
	cancel()
	if err := <-headErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("head err = %v", err)
	}
	sess := <-admitted
	sess.Release()
	hog.Release()
	if m.InUse() != 0 {
		t.Fatalf("inuse=%d after drain", m.InUse())
	}
}

func TestExclusiveSerializesExecution(t *testing.T) {
	s, _ := newSched(t, 32, 8)
	var inside, overlaps atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Release()
			for j := 0; j < 50; j++ {
				err := sess.Exclusive(context.Background(), func() error {
					if inside.Add(1) != 1 {
						overlaps.Add(1)
					}
					inside.Add(-1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := overlaps.Load(); n != 0 {
		t.Fatalf("%d overlapping Exclusive sections", n)
	}
}

func TestExclusiveWaitIsCancellable(t *testing.T) {
	s, _ := newSched(t, 32, 4)
	holder, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Release()
	other, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Release()

	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = holder.Exclusive(context.Background(), func() error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := other.Exclusive(ctx, func() error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestReleaseCountsPrivateLeaks(t *testing.T) {
	s, m := newSched(t, 8, 2)
	sess, err := s.Acquire(context.Background(), Request{MinBuffers: 4, WantBuffers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RAM().ReserveBuffers(1, 1); err != nil {
		t.Fatal(err)
	}
	sess.Release()
	sess.Release() // idempotent
	if s.Leaks() != 1 {
		t.Fatalf("leaks = %d, want 1", s.Leaks())
	}
	// The shared budget is still made whole.
	if m.InUse() != 0 || m.Leaked() {
		t.Fatalf("shared budget not restored: inuse=%d", m.InUse())
	}
}

// TestSheddingRejectsWhenQueueStalls: with a tiny wait bound, requests
// arriving behind a stalled queue head are rejected with ErrOverloaded
// while holding nothing, and the counter records each rejection.
func TestSheddingRejectsWhenQueueStalls(t *testing.T) {
	s, m := newSched(t, 8, 1)
	s.SetShedPolicy(time.Nanosecond)

	holder, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Queue a second request behind the holder (it fits the shed check:
	// nothing queued yet, avgSlot still zero, so predicted wait is 0).
	queuedErr := make(chan error, 1)
	go func() {
		sess, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
		if err == nil {
			sess.Release()
		}
		queuedErr <- err
	}()
	waitFor(t, "second request to queue", func() bool { return s.QueueLen() == 1 })

	// The queue head has nonzero age now, so any further arrival is
	// predicted to wait > 1ns and must be shed at arrival.
	time.Sleep(2 * time.Millisecond)
	if _, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := s.Sheds(); got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}
	// An unsheddable request (background maintenance) queues anyway.
	unshedDone := make(chan error, 1)
	go func() {
		sess, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1, Unsheddable: true})
		if err == nil {
			sess.Release()
		}
		unshedDone <- err
	}()
	waitFor(t, "unsheddable request to queue", func() bool { return s.QueueLen() == 2 })

	holder.Release()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued request: %v", err)
	}
	if err := <-unshedDone; err != nil {
		t.Fatalf("unsheddable request: %v", err)
	}
	if m.InUse() != 0 || m.Leaked() {
		t.Fatalf("budget not restored: inuse=%d", m.InUse())
	}
}

// TestSheddingDisabledByDefault: without SetShedPolicy the same stall
// only queues — nothing is ever rejected.
func TestSheddingDisabledByDefault(t *testing.T) {
	s, _ := newSched(t, 8, 1)
	holder, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			sess, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 1})
			if err == nil {
				sess.Release()
			}
			done <- err
		}()
	}
	waitFor(t, "both requests to queue", func() bool { return s.QueueLen() == 2 })
	holder.Release()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("queued request: %v", err)
		}
	}
	if got := s.Sheds(); got != 0 {
		t.Fatalf("sheds = %d, want 0", got)
	}
}

// TestSheddingUnderConcurrentLoad hammers a shedding scheduler from 16
// goroutines whose sessions hold the execution slot for real time —
// the -race certification of the shed path, and a liveness check that
// admitted + shed always accounts for every request.
func TestSheddingUnderConcurrentLoad(t *testing.T) {
	s, m := newSched(t, 8, 2)
	s.SetShedPolicy(200 * time.Microsecond)

	const goroutines = 16
	const perG = 25
	var admitted, shed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sess, err := s.Acquire(context.Background(), Request{MinBuffers: 1, WantBuffers: 2})
				if errors.Is(err, ErrOverloaded) {
					shed.Add(1)
					continue
				}
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				err = sess.Exclusive(context.Background(), func() error {
					time.Sleep(100 * time.Microsecond)
					return nil
				})
				sess.Release()
				if err != nil {
					t.Errorf("exclusive: %v", err)
					return
				}
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load() + shed.Load(); got != goroutines*perG {
		t.Fatalf("admitted %d + shed %d = %d, want %d", admitted.Load(), shed.Load(), got, goroutines*perG)
	}
	if shed.Load() != s.Sheds() {
		t.Fatalf("caller saw %d sheds, scheduler counted %d", shed.Load(), s.Sheds())
	}
	// 16 clients pounding a 2-session scheduler with a 200µs wait bound
	// must shed at least sometimes; all-admitted means the policy is off.
	if shed.Load() == 0 {
		t.Fatal("no request was ever shed under 8x overload")
	}
	if m.InUse() != 0 || m.Leaked() {
		t.Fatalf("budget not restored after load: inuse=%d", m.InUse())
	}
}
