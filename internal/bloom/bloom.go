// Package bloom implements the space-efficient probabilistic membership
// filter GhostDB uses for post-filtering (§3.3–3.4). The paper's
// calibration rules are built in: a ratio m/n = 8 bits per element with 4
// hash functions yields ≈2.4% false positives; when the element count is
// too large for the available RAM the ratio degrades smoothly (e.g. m/n = 6
// gives ≈5.5%), rather than failing.
package bloom

import (
	"errors"
	"math"
)

// TargetBitsPerElement is the paper's recommended m/n ratio.
const TargetBitsPerElement = 8

// DefaultHashes is the paper's hash-function count for m/n = 8.
const DefaultHashes = 4

// ErrTooSmall is returned when the RAM allowance cannot hold even a
// degraded filter (fewer than 1 bit per element).
var ErrTooSmall = errors.New("bloom: not enough memory for a useful filter")

// Filter is a classic Bloom filter over 32-bit tuple identifiers.
type Filter struct {
	bits   []uint64
	mBits  uint64
	k      int
	n      int // elements inserted
	target int // expected elements (for rate estimation)
}

// Plan describes the geometry chosen for a filter before building it, so
// the planner can weigh expected false-positive rates against RAM.
type Plan struct {
	Bits        uint64
	Bytes       int
	Hashes      int
	BitsPerElem float64
	ExpectedFPR float64
}

// PlanFor computes the filter geometry for n expected elements within
// maxBytes of RAM, following §3.4: aim for m = 8n bits, and degrade the
// ratio smoothly when RAM is short.
func PlanFor(n int, maxBytes int) (Plan, error) {
	if n <= 0 {
		n = 1
	}
	if maxBytes <= 0 {
		return Plan{}, ErrTooSmall
	}
	wantBits := uint64(n) * TargetBitsPerElement
	maxBits := uint64(maxBytes) * 8
	bits := wantBits
	if bits > maxBits {
		bits = maxBits
	}
	ratio := float64(bits) / float64(n)
	if ratio < 1 {
		return Plan{}, ErrTooSmall
	}
	k := int(math.Round(ratio * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	if ratio >= TargetBitsPerElement {
		k = DefaultHashes // the paper's fixed choice at m/n = 8
	}
	p := Plan{
		Bits:        bits,
		Bytes:       int((bits + 7) / 8),
		Hashes:      k,
		BitsPerElem: ratio,
		ExpectedFPR: fprEstimate(ratio, k),
	}
	return p, nil
}

func fprEstimate(bitsPerElem float64, k int) float64 {
	// (1 - e^(-k/ratio))^k
	return math.Pow(1-math.Exp(-float64(k)/bitsPerElem), float64(k))
}

// New builds an empty filter from a plan.
func New(p Plan, expected int) *Filter {
	words := (p.Bits + 63) / 64
	if words == 0 {
		words = 1
	}
	return &Filter{
		bits:   make([]uint64, words),
		mBits:  p.Bits,
		k:      p.Hashes,
		target: expected,
	}
}

// NewWithRatio builds a filter for n elements at an explicit bits-per-
// element ratio (ablation benchmarks exercise degraded ratios directly).
func NewWithRatio(n int, bitsPerElem float64, hashes int) *Filter {
	bits := uint64(math.Ceil(float64(n) * bitsPerElem))
	if bits == 0 {
		bits = 64
	}
	return New(Plan{Bits: bits, Hashes: hashes}, n)
}

// SizeBytes returns the RAM footprint of the bit vector.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Count returns the number of inserted elements.
func (f *Filter) Count() int { return f.n }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() int { return f.k }

// hash derives the i-th hash via double hashing of a strong 64-bit mix.
func (f *Filter) hash(id uint32, i int) uint64 {
	x := uint64(id)
	// SplitMix64 finalizer: well distributed for sequential IDs.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	h1 := x
	h2 := (x >> 32) | (x << 32) | 1
	return (h1 + uint64(i)*h2) % f.mBits
}

// Add inserts an identifier.
func (f *Filter) Add(id uint32) {
	for i := 0; i < f.k; i++ {
		b := f.hash(id, i)
		f.bits[b/64] |= 1 << (b % 64)
	}
	f.n++
}

// MayContain reports whether id may have been inserted. False positives
// occur at roughly the planned rate; false negatives never.
func (f *Filter) MayContain(id uint32) bool {
	for i := 0; i < f.k; i++ {
		b := f.hash(id, i)
		if f.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// EstimatedFPR returns the expected false-positive rate at the current
// fill level.
func (f *Filter) EstimatedFPR() float64 {
	if f.n == 0 {
		return 0
	}
	return fprEstimate(float64(f.mBits)/float64(f.n), f.k)
}
