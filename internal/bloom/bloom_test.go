package bloom

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegativesProperty(t *testing.T) {
	// Property: every inserted element is found, for arbitrary ID sets.
	f := func(ids []uint32) bool {
		p, err := PlanFor(len(ids)+1, 1<<16)
		if err != nil {
			return false
		}
		fl := New(p, len(ids))
		for _, id := range ids {
			fl.Add(id)
		}
		for _, id := range ids {
			if !fl.MayContain(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateNearPlan(t *testing.T) {
	const n = 20000
	p, err := PlanFor(n, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if p.BitsPerElem != 8 || p.Hashes != DefaultHashes {
		t.Fatalf("plan = %+v, want m/n=8 k=4", p)
	}
	f := New(p, n)
	for i := uint32(0); i < n; i++ {
		f.Add(i)
	}
	rng := rand.New(rand.NewSource(42))
	fp := 0
	const probes = 50000
	for i := 0; i < probes; i++ {
		id := uint32(n) + uint32(rng.Intn(1<<30))
		if f.MayContain(id) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Paper: 0.024 at m/n=8, k=4. Allow generous slack.
	if rate < 0.005 || rate > 0.05 {
		t.Fatalf("false positive rate %.4f outside [0.005, 0.05]", rate)
	}
}

func TestDegradedRatio(t *testing.T) {
	// RAM allows only 6 bits per element -> paper predicts ~5.5% FPR.
	const n = 64000
	p, err := PlanFor(n, 6*n/8)
	if err != nil {
		t.Fatal(err)
	}
	if p.BitsPerElem > 6.01 || p.BitsPerElem < 5.5 {
		t.Fatalf("bits per elem = %v", p.BitsPerElem)
	}
	if p.ExpectedFPR < 0.02 || p.ExpectedFPR > 0.12 {
		t.Fatalf("expected FPR = %v", p.ExpectedFPR)
	}
}

func TestTooSmall(t *testing.T) {
	if _, err := PlanFor(1000000, 10); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("err = %v", err)
	}
	if _, err := PlanFor(10, 0); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("zero budget: %v", err)
	}
}

func TestNewWithRatio(t *testing.T) {
	f := NewWithRatio(1000, 4, 3)
	for i := uint32(0); i < 1000; i++ {
		f.Add(i)
	}
	for i := uint32(0); i < 1000; i++ {
		if !f.MayContain(i) {
			t.Fatalf("false negative at %d", i)
		}
	}
	if f.EstimatedFPR() <= 0 {
		t.Fatal("estimated FPR should be positive")
	}
	if f.Count() != 1000 || f.Hashes() != 3 {
		t.Fatalf("count=%d hashes=%d", f.Count(), f.Hashes())
	}
}
