// Package schema defines GhostDB's data model: tables with Visible and
// Hidden attributes, foreign keys forming a tree-structured schema (Figure
// 3 of the paper), and the vertical partitioning plan that places Visible
// columns on the Untrusted computer and Hidden columns on the Secure USB
// key with surrogate identifiers replicated on both sides (§2.1).
package schema

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// IDWidth is the on-flash width of a surrogate identifier (Table 1).
const IDWidth = 4

// ErrNotTree is returned when the foreign keys do not form a forest of
// trees (each table has at most one parent, no cycles).
var ErrNotTree = errors.New("schema: foreign keys must form a tree")

// Column describes a data attribute.
type Column struct {
	Name   string
	Kind   Kind
	Width  int  // for KindChar, the declared width
	Hidden bool // HIDDEN annotation from CREATE TABLE
}

// EncodedWidth returns the fixed storage width of the column.
func (c Column) EncodedWidth() int { return EncodedWidth(c.Kind, c.Width) }

// Ref is a foreign-key edge from this (parent) table to a child table:
// every tuple of the parent references exactly one tuple of Child, as in
// the paper's tree schema where the root/fact table references each
// dimension. Following the paper's design guideline, foreign keys are
// Hidden by default so that Visible data reveals no relationships.
type Ref struct {
	FKColumn string // the foreign-key attribute name (e.g. "fk1")
	Child    string // referenced table
	Hidden   bool
}

// TableDef is the user-facing table declaration.
type TableDef struct {
	Name    string
	Columns []Column
	Refs    []Ref
}

// Table is a validated table within a Schema, enriched with its tree
// position. Index fields refer to Schema.Tables ordering.
type Table struct {
	TableDef
	Index       int    // position in Schema.Tables
	ParentIndex int    // -1 for the root
	ParentRef   string // fk column in the parent referencing this table
	Depth       int    // 0 for the root

	children    []int
	descendants []int // preorder, not including self
	ancestors   []int // nearest first, ending at the root
}

// Schema is a validated forest of tree-structured table groups. The
// paper's schemas are a single tree (Figure 3); several independent
// trees in one database are allowed so that tables can be placed across
// multiple secure tokens — joins never cross trees (they follow fk
// edges), which is exactly what makes tree-granularity placement safe.
type Schema struct {
	Tables []*Table
	byName map[string]int
	roots  []int // tree roots, in declaration order
	rootOf []int // table index -> root of its tree
}

// New validates the table definitions and computes the tree structure.
func New(defs []TableDef) (*Schema, error) {
	if len(defs) == 0 {
		return nil, errors.New("schema: no tables")
	}
	s := &Schema{byName: make(map[string]int, len(defs))}
	for i, d := range defs {
		if d.Name == "" {
			return nil, errors.New("schema: empty table name")
		}
		if _, dup := s.byName[strings.ToLower(d.Name)]; dup {
			return nil, fmt.Errorf("schema: duplicate table %q", d.Name)
		}
		if err := validateColumns(d); err != nil {
			return nil, err
		}
		s.byName[strings.ToLower(d.Name)] = i
		s.Tables = append(s.Tables, &Table{TableDef: d, Index: i, ParentIndex: -1})
	}
	// Wire parent/child edges.
	for i, t := range s.Tables {
		seen := map[string]bool{}
		for _, r := range t.Refs {
			ci, ok := s.byName[strings.ToLower(r.Child)]
			if !ok {
				return nil, fmt.Errorf("schema: table %q references unknown table %q", t.Name, r.Child)
			}
			if ci == i {
				return nil, fmt.Errorf("schema: table %q references itself", t.Name)
			}
			if seen[strings.ToLower(r.Child)] {
				return nil, fmt.Errorf("schema: table %q references %q twice", t.Name, r.Child)
			}
			seen[strings.ToLower(r.Child)] = true
			child := s.Tables[ci]
			if child.ParentIndex >= 0 {
				return nil, fmt.Errorf("%w: table %q referenced by both %q and %q",
					ErrNotTree, child.Name, s.Tables[child.ParentIndex].Name, t.Name)
			}
			child.ParentIndex = i
			child.ParentRef = r.FKColumn
			t.children = append(t.children, ci)
		}
	}
	// One or more roots; every table reachable from some root; acyclic
	// (parent uniqueness + full reachability from the roots imply a
	// forest — an unreachable table would be on a parent cycle).
	for _, t := range s.Tables {
		if t.ParentIndex < 0 {
			s.roots = append(s.roots, t.Index)
		}
	}
	if len(s.roots) == 0 {
		return nil, fmt.Errorf("%w: no root table (reference cycle)", ErrNotTree)
	}
	if err := s.computeTree(); err != nil {
		return nil, err
	}
	return s, nil
}

func validateColumns(d TableDef) error {
	names := map[string]bool{"id": true}
	for _, r := range d.Refs {
		low := strings.ToLower(r.FKColumn)
		if low == "" || names[low] {
			return fmt.Errorf("schema: table %q: bad or duplicate fk column %q", d.Name, r.FKColumn)
		}
		names[low] = true
	}
	for _, c := range d.Columns {
		low := strings.ToLower(c.Name)
		if low == "" || names[low] {
			return fmt.Errorf("schema: table %q: bad or duplicate column %q", d.Name, c.Name)
		}
		names[low] = true
		switch c.Kind {
		case KindInt, KindFloat:
		case KindChar:
			if c.Width <= 0 {
				return fmt.Errorf("schema: table %q column %q: char width must be positive", d.Name, c.Name)
			}
		default:
			return fmt.Errorf("schema: table %q column %q: invalid kind", d.Name, c.Name)
		}
	}
	return nil
}

func (s *Schema) computeTree() error {
	// Depth-first from every root; a table not reached from any root sits
	// on a parent cycle.
	visited := make([]bool, len(s.Tables))
	s.rootOf = make([]int, len(s.Tables))
	var walk func(i, root, depth int) []int
	walk = func(i, root, depth int) []int {
		t := s.Tables[i]
		visited[i] = true
		s.rootOf[i] = root
		t.Depth = depth
		var desc []int
		for _, c := range t.children {
			desc = append(desc, c)
			desc = append(desc, walk(c, root, depth+1)...)
		}
		t.descendants = desc
		return desc
	}
	for _, r := range s.roots {
		walk(r, r, 0)
	}
	for i, v := range visited {
		if !v {
			return fmt.Errorf("%w: table %q unreachable from any root (reference cycle)",
				ErrNotTree, s.Tables[i].Name)
		}
	}
	for _, t := range s.Tables {
		t.ancestors = nil
		for p := t.ParentIndex; p >= 0; p = s.Tables[p].ParentIndex {
			t.ancestors = append(t.ancestors, p)
		}
	}
	return nil
}

// Root returns the first tree's root table. Single-tree schemas (the
// paper's shape) have exactly one; forest schemas should use Roots.
func (s *Schema) Root() *Table { return s.Tables[s.roots[0]] }

// Roots returns the root table index of every tree, in declaration
// order.
func (s *Schema) Roots() []int { return s.roots }

// RootOf returns the root table index of the tree containing table ti.
func (s *Schema) RootOf(ti int) int { return s.rootOf[ti] }

// IsRoot reports whether table ti is the root of its tree.
func (s *Schema) IsRoot(ti int) bool { return s.rootOf[ti] == ti }

// TreeTables returns the table indexes of the tree rooted at root
// (root first, then preorder descendants).
func (s *Schema) TreeTables(root int) []int {
	return append([]int{root}, s.Tables[root].descendants...)
}

// Lookup finds a table by case-insensitive name.
func (s *Schema) Lookup(name string) (*Table, bool) {
	i, ok := s.byName[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return s.Tables[i], true
}

// Children returns the direct child tables.
func (t *Table) Children() []int { return t.children }

// Descendants returns all descendant table indexes in preorder.
func (t *Table) Descendants() []int { return t.descendants }

// Ancestors returns the ancestor table indexes, nearest (parent) first.
func (t *Table) Ancestors() []int { return t.ancestors }

// Column finds a data column by case-insensitive name.
func (t *Table) Column(name string) (Column, int, bool) {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return c, i, true
		}
	}
	return Column{}, -1, false
}

// RefTo returns the fk edge from t to the given child table index.
func (t *Table) RefTo(child string) (Ref, bool) {
	for _, r := range t.Refs {
		if strings.EqualFold(r.Child, child) {
			return r, true
		}
	}
	return Ref{}, false
}

// VisibleColumns and HiddenColumns return the vertical partitioning of the
// data attributes (§2.1): Visible columns live on Untrusted, Hidden ones
// (plus all hidden fks) on Secure; the id is replicated on both sides.
func (t *Table) VisibleColumns() []Column { return t.filter(false) }

// HiddenColumns returns the Hidden data attributes (fks excluded: they are
// materialized inside the Subtree Key Tables, §3.2).
func (t *Table) HiddenColumns() []Column { return t.filter(true) }

func (t *Table) filter(hidden bool) []Column {
	var out []Column
	for _, c := range t.Columns {
		if c.Hidden == hidden {
			out = append(out, c)
		}
	}
	return out
}

// IsAncestorOf reports whether t is a (transitive) ancestor of other, or
// the same table.
func (s *Schema) IsAncestorOf(t, other int) bool {
	if t == other {
		return true
	}
	for _, a := range s.Tables[other].ancestors {
		if a == t {
			return true
		}
	}
	return false
}

// CommonAncestor returns the lowest table that is an ancestor-or-self of
// every table in set, or -1 when the set spans several trees (no common
// ancestor exists in a forest).
func (s *Schema) CommonAncestor(set []int) int {
	if len(set) == 0 {
		return s.roots[0]
	}
	anc := append([]int{set[0]}, s.Tables[set[0]].ancestors...)
	for _, t := range set[1:] {
		ok := make(map[int]bool, len(anc))
		for _, a := range anc {
			ok[a] = true
		}
		var next []int
		for _, a := range append([]int{t}, s.Tables[t].ancestors...) {
			if ok[a] {
				next = append(next, a)
			}
		}
		anc = next
	}
	if len(anc) == 0 {
		return -1
	}
	// anc is ordered deepest-first because ancestor lists are.
	return anc[0]
}

// PathUp returns the table indexes from `from` up to `to` inclusive,
// where `to` must be an ancestor-or-self of `from`.
func (s *Schema) PathUp(from, to int) ([]int, error) {
	path := []int{from}
	cur := from
	for cur != to {
		p := s.Tables[cur].ParentIndex
		if p < 0 {
			return nil, fmt.Errorf("schema: %q is not an ancestor of %q",
				s.Tables[to].Name, s.Tables[from].Name)
		}
		path = append(path, p)
		cur = p
	}
	return path, nil
}

// String renders the schema as CREATE TABLE statements (each tree root
// first, then preorder), for diagnostics.
func (s *Schema) String() string {
	var order []int
	for _, r := range s.roots {
		order = append(order, s.TreeTables(r)...)
	}
	var b strings.Builder
	for _, i := range order {
		t := s.Tables[i]
		fmt.Fprintf(&b, "CREATE TABLE %s (id int", t.Name)
		refs := append([]Ref(nil), t.Refs...)
		sort.Slice(refs, func(a, c int) bool { return refs[a].FKColumn < refs[c].FKColumn })
		for _, r := range refs {
			fmt.Fprintf(&b, ", %s int REFERENCES %s", r.FKColumn, r.Child)
			if r.Hidden {
				b.WriteString(" HIDDEN")
			}
		}
		for _, c := range t.Columns {
			fmt.Fprintf(&b, ", %s %s", c.Name, typeSQL(c))
			if c.Hidden {
				b.WriteString(" HIDDEN")
			}
		}
		b.WriteString(");\n")
	}
	return b.String()
}

func typeSQL(c Column) string {
	switch c.Kind {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindChar:
		return fmt.Sprintf("char(%d)", c.Width)
	}
	return "?"
}
