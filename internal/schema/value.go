package schema

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates GhostDB column types.
type Kind int

const (
	KindInvalid Kind = iota
	KindInt          // 64-bit signed integer
	KindFloat        // 64-bit IEEE float
	KindChar         // fixed-width character string, space-padded
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindChar:
		return "char"
	}
	return "invalid"
}

// Value is a dynamically typed column value. The zero Value is invalid.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// IntVal, FloatVal and CharVal construct Values.
func IntVal(i int64) Value     { return Value{Kind: KindInt, I: i} }
func FloatVal(f float64) Value { return Value{Kind: KindFloat, F: f} }
func CharVal(s string) Value   { return Value{Kind: KindChar, S: s} }

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindChar:
		return v.S
	}
	return "<invalid>"
}

// Compare orders two values of the same kind: -1, 0 or +1. Comparing
// different kinds is a programming error and panics.
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		panic(fmt.Sprintf("schema: comparing %v with %v", v.Kind, o.Kind))
	}
	switch v.Kind {
	case KindInt:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
		return 0
	case KindChar:
		return strings.Compare(v.S, o.S)
	}
	panic("schema: comparing invalid values")
}

// Equal reports whether two values are identical in kind and content.
func (v Value) Equal(o Value) bool {
	return v.Kind == o.Kind && v.Compare(o) == 0
}

// EncodedWidth returns the fixed on-flash width of a column of this type.
func EncodedWidth(k Kind, width int) int {
	switch k {
	case KindInt, KindFloat:
		return 8
	case KindChar:
		return width
	}
	return 0
}

// EncodeValue writes an order-preserving fixed-width encoding of v into
// dst (len(dst) must equal the column's encoded width): big-endian biased
// integers, sign-flipped IEEE floats, space-padded strings. Byte-wise
// comparison of encodings matches Value.Compare, which is what the B+-tree
// relies on.
func EncodeValue(dst []byte, v Value) error {
	switch v.Kind {
	case KindInt:
		if len(dst) != 8 {
			return fmt.Errorf("schema: int needs 8 bytes, have %d", len(dst))
		}
		binary.BigEndian.PutUint64(dst, uint64(v.I)^(1<<63))
	case KindFloat:
		if len(dst) != 8 {
			return fmt.Errorf("schema: float needs 8 bytes, have %d", len(dst))
		}
		bits := math.Float64bits(v.F)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits ^= 1 << 63
		}
		binary.BigEndian.PutUint64(dst, bits)
	case KindChar:
		if len(v.S) > len(dst) {
			return fmt.Errorf("schema: string %q exceeds char(%d)", v.S, len(dst))
		}
		n := copy(dst, v.S)
		for i := n; i < len(dst); i++ {
			dst[i] = ' '
		}
	default:
		return fmt.Errorf("schema: cannot encode kind %v", v.Kind)
	}
	return nil
}

// DecodeValue reverses EncodeValue.
func DecodeValue(src []byte, k Kind) (Value, error) {
	switch k {
	case KindInt:
		if len(src) != 8 {
			return Value{}, fmt.Errorf("schema: int needs 8 bytes, have %d", len(src))
		}
		return IntVal(int64(binary.BigEndian.Uint64(src) ^ (1 << 63))), nil
	case KindFloat:
		if len(src) != 8 {
			return Value{}, fmt.Errorf("schema: float needs 8 bytes, have %d", len(src))
		}
		bits := binary.BigEndian.Uint64(src)
		if bits&(1<<63) != 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		return FloatVal(math.Float64frombits(bits)), nil
	case KindChar:
		return CharVal(strings.TrimRight(string(src), " ")), nil
	}
	return Value{}, fmt.Errorf("schema: cannot decode kind %v", k)
}

// Row is a sequence of column values.
type Row []Value
