package schema

import (
	"errors"
	"strings"
	"testing"
)

// paperSchema builds the synthetic tree of Figure 3: T0 -> {T1, T2},
// T1 -> {T11, T12}.
func paperSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New(paperDefs())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func paperDefs() []TableDef {
	attrs := func() []Column {
		return []Column{
			{Name: "v1", Kind: KindChar, Width: 10},
			{Name: "h1", Kind: KindChar, Width: 10, Hidden: true},
		}
	}
	return []TableDef{
		{Name: "T0", Columns: attrs(), Refs: []Ref{
			{FKColumn: "fk1", Child: "T1", Hidden: true},
			{FKColumn: "fk2", Child: "T2", Hidden: true},
		}},
		{Name: "T1", Columns: attrs(), Refs: []Ref{
			{FKColumn: "fk11", Child: "T11", Hidden: true},
			{FKColumn: "fk12", Child: "T12", Hidden: true},
		}},
		{Name: "T2", Columns: attrs()},
		{Name: "T11", Columns: attrs()},
		{Name: "T12", Columns: attrs()},
	}
}

func TestTreeComputation(t *testing.T) {
	s := paperSchema(t)
	if s.Root().Name != "T0" {
		t.Fatalf("root = %q", s.Root().Name)
	}
	t12, ok := s.Lookup("t12") // case-insensitive
	if !ok {
		t.Fatal("lookup t12 failed")
	}
	if t12.Depth != 2 {
		t.Fatalf("T12 depth = %d", t12.Depth)
	}
	anc := t12.Ancestors()
	if len(anc) != 2 || s.Tables[anc[0]].Name != "T1" || s.Tables[anc[1]].Name != "T0" {
		t.Fatalf("T12 ancestors = %v", anc)
	}
	desc := s.Root().Descendants()
	if len(desc) != 4 {
		t.Fatalf("root descendants = %v", desc)
	}
	t1, _ := s.Lookup("T1")
	if got := len(t1.Descendants()); got != 2 {
		t.Fatalf("T1 descendants = %d", got)
	}
	if !s.IsAncestorOf(s.Root().Index, t12.Index) {
		t.Fatal("T0 should be ancestor of T12")
	}
	if s.IsAncestorOf(t12.Index, t1.Index) {
		t.Fatal("T12 is not an ancestor of T1")
	}
}

func TestCommonAncestorAndPath(t *testing.T) {
	s := paperSchema(t)
	idx := func(n string) int { tb, _ := s.Lookup(n); return tb.Index }
	if got := s.CommonAncestor([]int{idx("T11"), idx("T12")}); s.Tables[got].Name != "T1" {
		t.Fatalf("CA(T11,T12) = %s", s.Tables[got].Name)
	}
	if got := s.CommonAncestor([]int{idx("T12"), idx("T2")}); s.Tables[got].Name != "T0" {
		t.Fatalf("CA(T12,T2) = %s", s.Tables[got].Name)
	}
	if got := s.CommonAncestor([]int{idx("T12")}); s.Tables[got].Name != "T12" {
		t.Fatalf("CA(T12) = %s", s.Tables[got].Name)
	}
	path, err := s.PathUp(idx("T12"), idx("T0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || s.Tables[path[1]].Name != "T1" {
		t.Fatalf("path = %v", path)
	}
	if _, err := s.PathUp(idx("T1"), idx("T12")); err == nil {
		t.Fatal("downhill path accepted")
	}
}

func TestVerticalPartitioning(t *testing.T) {
	s := paperSchema(t)
	t0 := s.Root()
	vis, hid := t0.VisibleColumns(), t0.HiddenColumns()
	if len(vis) != 1 || vis[0].Name != "v1" {
		t.Fatalf("visible = %v", vis)
	}
	if len(hid) != 1 || hid[0].Name != "h1" {
		t.Fatalf("hidden = %v", hid)
	}
}

func TestRejectTwoParents(t *testing.T) {
	defs := paperDefs()
	// Make T2 also reference T12.
	defs[2].Refs = []Ref{{FKColumn: "fkx", Child: "T12"}}
	if _, err := New(defs); !errors.Is(err, ErrNotTree) {
		t.Fatalf("two parents: %v", err)
	}
}

func TestForestTwoRoots(t *testing.T) {
	// Two independent trees in one schema: the shape cross-token
	// placement shards on. Each tree keeps its own root, depths and
	// descendant sets; CommonAncestor across trees reports none.
	defs := []TableDef{
		{Name: "A", Refs: []Ref{{FKColumn: "fb", Child: "B"}}},
		{Name: "B"},
		{Name: "X", Refs: []Ref{{FKColumn: "fy", Child: "Y"}}},
		{Name: "Y"},
	}
	s, err := New(defs)
	if err != nil {
		t.Fatalf("forest rejected: %v", err)
	}
	if got := s.Roots(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Roots() = %v", got)
	}
	if s.RootOf(1) != 0 || s.RootOf(3) != 2 || !s.IsRoot(2) || s.IsRoot(3) {
		t.Fatalf("RootOf/IsRoot wrong: rootOf(B)=%d rootOf(Y)=%d", s.RootOf(1), s.RootOf(3))
	}
	if ca := s.CommonAncestor([]int{1, 3}); ca != -1 {
		t.Fatalf("cross-tree CommonAncestor = %d, want -1", ca)
	}
	if ca := s.CommonAncestor([]int{0, 1}); ca != 0 {
		t.Fatalf("in-tree CommonAncestor = %d, want 0", ca)
	}
	if tt := s.TreeTables(2); len(tt) != 2 || tt[0] != 2 || tt[1] != 3 {
		t.Fatalf("TreeTables(X) = %v", tt)
	}
	if !strings.Contains(s.String(), "CREATE TABLE X") {
		t.Fatalf("String() misses the second tree:\n%s", s.String())
	}
}

func TestRejectCycle(t *testing.T) {
	defs := []TableDef{
		{Name: "A", Refs: []Ref{{FKColumn: "fb", Child: "B"}}},
		{Name: "B", Refs: []Ref{{FKColumn: "fa", Child: "A"}}},
	}
	if _, err := New(defs); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestRejectBadColumns(t *testing.T) {
	cases := []TableDef{
		{Name: "X", Columns: []Column{{Name: "id", Kind: KindInt}}},                            // clashes with implicit id
		{Name: "X", Columns: []Column{{Name: "a", Kind: KindChar}}},                            // zero width
		{Name: "X", Columns: []Column{{Name: "a", Kind: KindInt}, {Name: "A", Kind: KindInt}}}, // dup
		{Name: "X", Columns: []Column{{Name: "a"}}},                                            // invalid kind
	}
	for i, d := range cases {
		if _, err := New([]TableDef{d}); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestRejectUnknownAndSelfRefs(t *testing.T) {
	if _, err := New([]TableDef{{Name: "A", Refs: []Ref{{FKColumn: "f", Child: "Nope"}}}}); err == nil {
		t.Fatal("unknown child accepted")
	}
	if _, err := New([]TableDef{{Name: "A", Refs: []Ref{{FKColumn: "f", Child: "A"}}}}); err == nil {
		t.Fatal("self reference accepted")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("empty schema accepted")
	}
}

func TestSchemaString(t *testing.T) {
	s := paperSchema(t)
	out := s.String()
	for _, want := range []string{"CREATE TABLE T0", "fk1 int REFERENCES T1 HIDDEN", "h1 char(10) HIDDEN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}
