// Package ghostdb is a faithful reimplementation of GhostDB (Anciaux,
// Benzine, Bouganim, Pucheral, Shasha — SIGMOD 2007): a database that
// splits every table between an Untrusted computer (Visible columns) and
// a simulated Secure USB key (Hidden columns), and evaluates standard SQL
// select-project-join queries so that hidden data never leaves the secure
// perimeter — the only information an observer learns is the query text.
//
// The embedded secure token is simulated I/O-accurately, in the same
// spirit as the paper's own evaluation platform: a NAND flash device with
// an FTL (25µs page reads, 200µs page writes, 50ns/byte transfers), a
// 64KB RAM budget and a throughput-limited USB link. Query costs are
// reported as simulated time derived from those counters.
//
// Quick start:
//
//	db, _ := ghostdb.Create([]string{
//	    `CREATE TABLE Patients (id int, name char(20) HIDDEN, age int)`,
//	}, ghostdb.Options{})
//	ld := db.Loader()
//	ld.Append("Patients", ghostdb.R{"name": "Dupont", "age": 52})
//	ld.Commit()
//	res, _ := db.Query(`SELECT id, name FROM Patients WHERE age = 52`)
package ghostdb

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ghostdb/internal/cache"
	"ghostdb/internal/exec"
	"ghostdb/internal/flash"
	"ghostdb/internal/index"
	"ghostdb/internal/obs"
	"ghostdb/internal/pagecache"
	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
)

// Re-exported value types. Values returned by queries are of type Value;
// construct them with IntVal, FloatVal and CharVal when needed.
type (
	// Value is a dynamically typed column value.
	Value = schema.Value
	// Row is one result tuple.
	Row = schema.Row
	// Stats reports the simulated cost of a query.
	Stats = exec.Stats
	// Result is a query answer: column labels, rows and cost statistics.
	Result = exec.Result
	// Strategy selects the visible/hidden combination strategy (§3.3).
	Strategy = exec.Strategy
	// Projector selects the projection algorithm (§4).
	Projector = exec.Projector
	// Plan is the inspectable product of Prepare: per-table strategies,
	// the projector, the derived minimum RAM footprint that admission
	// will request, and an estimated cost.
	Plan = exec.Plan
	// TablePlan is one table's entry in a Plan.
	TablePlan = exec.TablePlan
	// CacheStats reports the result cache's counters (db.CacheStats).
	CacheStats = cache.Stats
	// Trace is a per-query span tree (attach with WithTrace, render with
	// Trace.JSON). Every value in it is declassified by construction:
	// simulated durations from the metered cost model, wall-clock
	// scheduling waits, and canonical query text.
	Trace = obs.Trace
	// TraceSpan is the JSON form of one trace span (Trace.Snapshot).
	TraceSpan = obs.SpanJSON
	// Metrics is the engine's counter/gauge/histogram registry
	// (db.Metrics); render with WritePrometheus.
	Metrics = obs.Registry
	// SlowQuery is one slow-query log entry (db.SlowLog().Entries()).
	SlowQuery = obs.SlowQuery
	// SlowLog is the ring-buffered slow-query log (db.SlowLog; nil when
	// Options.SlowQueryThreshold is zero).
	SlowLog = obs.SlowLog
)

// NewTrace creates an empty trace for one query; pass it via WithTrace
// and read it back after the query returns (Snapshot or JSON).
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// IntVal constructs an integer Value.
func IntVal(i int64) Value { return schema.IntVal(i) }

// FloatVal constructs a floating-point Value.
func FloatVal(f float64) Value { return schema.FloatVal(f) }

// CharVal constructs a fixed-width character Value.
func CharVal(s string) Value { return schema.CharVal(s) }

// Execution strategies (StrategyAuto lets the planner decide, which is
// the recommended setting; the rest force a strategy for experiments).
const (
	StrategyAuto            = exec.StratAuto
	StrategyPreFilter       = exec.StratPre
	StrategyCrossPreFilter  = exec.StratCrossPre
	StrategyPostFilter      = exec.StratPost
	StrategyCrossPostFilter = exec.StratCrossPost
	StrategyPostSelect      = exec.StratPostSelect
	StrategyCrossPostSelect = exec.StratCrossPostSelect
	StrategyNoFilter        = exec.StratNoFilter
)

// Projection algorithms.
const (
	ProjectorBloom      = exec.ProjectBloom
	ProjectorNoBF       = exec.ProjectNoBF
	ProjectorBruteForce = exec.ProjectBruteForce
)

// ErrBloomInfeasible mirrors exec.ErrBloomInfeasible for callers forcing
// Post-Filter strategies.
var ErrBloomInfeasible = exec.ErrBloomInfeasible

// ErrBudgetTooSmall mirrors exec.ErrBudgetTooSmall: the statement's
// planned minimum RAM footprint exceeds the configured budget, so it was
// rejected cleanly at admission time (inspect Stmt.Plan().MinBuffers).
var ErrBudgetTooSmall = exec.ErrBudgetTooSmall

// ErrOverloaded mirrors exec.ErrOverloaded: the statement was shed at
// arrival because its token's predicted admission-queue wait exceeded
// Options.MaxQueueWait. Nothing was reserved; retry after backing off.
// Servers surface it as HTTP 429.
var ErrOverloaded = exec.ErrOverloaded

// Version identifies the GhostDB build (also carried by the
// ghostdb_build_info metric, the server's STATS output and the demo
// shell banner).
const Version = exec.Version

// Options configures the simulated secure platform. The zero value uses
// the paper's Table 1 parameters: 2KB pages, 64KB RAM, 1.5 MB/s link.
type Options struct {
	// RAMBytes is the secure chip RAM budget (default 65536).
	RAMBytes int
	// ThroughputMBps is the USB link speed (default 1.5).
	ThroughputMBps float64
	// FlashPageSize is the flash I/O unit (default 2048).
	FlashPageSize int
	// FlashBlocks sets the device capacity in 64-page erase blocks
	// (default 32768 ≈ 4GB).
	FlashBlocks int
	// MaxConcurrentQueries bounds the query sessions admitted at once:
	// each admitted session holds its RAM grant until its query
	// completes, while execution on the simulated token stays serial
	// (default 4; values below 1 mean 1).
	MaxConcurrentQueries int
	// ResultCacheBytes bounds the untrusted-side result cache (0
	// disables caching). The cache is keyed on normalized query text —
	// the one thing GhostDB's security model already reveals — and holds
	// materialized results in *untrusted host RAM*, so it is not charged
	// against the secure RAMBytes budget. A cache hit answers without
	// admitting a session: zero flash I/O and zero bytes on the token
	// bus. A successful Exec (INSERT) invalidates exactly the cached
	// results whose queries touch the inserted table's shard (per-shard
	// version vector).
	ResultCacheBytes int
	// PageCacheBytes bounds the untrusted-side page cache (0 disables
	// it): a buffer pool below the result cache that retains computed
	// visible-column runs in untrusted host RAM and lets each token keep
	// its matching Vis spools flash-resident, so a repeated visible
	// selection at the same data version ships a fixed-size header
	// instead of the full run. Keys are canonical per-table predicate
	// text — already revealed by the query — and invalidation rides the
	// same per-shard committed-write versions as the result cache, so
	// hits and misses are a pure function of public state.
	PageCacheBytes int
	// PageCachePolicy selects the page-cache eviction policy: "lru"
	// (default) or "clock".
	PageCachePolicy string
	// BusAuditEntries bounds each token's bus audit trail: 0 (default)
	// keeps the full trail (tests and forensics), n > 0 keeps a ring of
	// the most recent n records, and negative disables recording
	// entirely (benchmarks and servers; the byte/time counters always
	// accumulate).
	BusAuditEntries int
	// Shards is the number of simulated secure tokens to place the
	// schema's trees across (default 1). Each token is a complete secure
	// unit — its own flash, RAM budget, bus and admission queue — so
	// shard-local workloads scale near-linearly with the token count.
	// Placement is at schema-tree granularity (joins never cross trees);
	// queries over several trees fan out per-shard sub-plans and merge
	// their cross product on the untrusted side.
	Shards int
	// SlowQueryThreshold enables the slow-query log: completed statements
	// (SELECT, UPDATE, DELETE and background COMPACT sessions, each entry
	// kind-tagged) whose simulated time reaches the threshold are
	// recorded (canonical statement text, costs and a span summary — all
	// declassified scalars). Zero leaves the log disabled.
	SlowQueryThreshold time.Duration
	// SlowLogEntries bounds the slow-query ring buffer (default 128;
	// older entries are overwritten).
	SlowLogEntries int
	// CompactThreshold is the delta-log depth, in flash pages, at which
	// a token starts a background compaction (default 64; negative
	// disables automatic compaction — DB.Compact still works).
	CompactThreshold int
	// MaxQueueWait enables load shedding: a statement arriving when its
	// token's predicted admission wait exceeds the bound fails fast with
	// ErrOverloaded instead of queueing, keeping admitted-query latency
	// bounded under open-loop overload. 0 disables shedding (the
	// default). Background compaction is never shed.
	MaxQueueWait time.Duration
	// SLOTarget is the wall-clock latency objective the rolling SLO
	// window (DB.SLO, the /slo endpoint, ghostdb_slo_attainment) scores
	// completed statements against (default 25ms).
	SLOTarget time.Duration
	// PaceSimulation > 0 makes every session hold its token's execution
	// slot for SimTime/PaceSimulation of real time, so wall-clock
	// latency reflects the modeled hardware's occupancy instead of host
	// CPU speed. Answers and simulated counters are unaffected; 0
	// disables pacing (the default). Benchmarks and overload tests use
	// this — production embeddings normally leave it off.
	PaceSimulation float64
}

func (o Options) toExec() exec.Options {
	var eo exec.Options
	eo.RAMBudget = o.RAMBytes
	eo.ThroughputMBps = o.ThroughputMBps
	eo.MaxConcurrentQueries = o.MaxConcurrentQueries
	eo.ResultCacheBytes = o.ResultCacheBytes
	eo.PageCacheBytes = o.PageCacheBytes
	eo.PageCachePolicy = o.PageCachePolicy
	eo.BusAuditEntries = o.BusAuditEntries
	eo.Shards = o.Shards
	eo.SlowQueryThreshold = o.SlowQueryThreshold
	eo.SlowLogEntries = o.SlowLogEntries
	eo.CompactThreshold = o.CompactThreshold
	eo.MaxQueueWait = o.MaxQueueWait
	eo.SLOTarget = o.SLOTarget
	eo.PaceSimulation = o.PaceSimulation
	fp := flash.DefaultParams()
	if o.FlashPageSize > 0 {
		fp.PageSize = o.FlashPageSize
	}
	if o.FlashBlocks > 0 {
		fp.Blocks = o.FlashBlocks
	}
	eo.FlashParams = fp
	eo.Variant = index.VariantFull
	return eo
}

// DB is a GhostDB instance: an untrusted visible store plus a simulated
// secure USB key holding the hidden partition and all index structures.
type DB struct {
	sch   *schema.Schema
	inner *exec.DB
	// loaded flips once at Loader.Commit; atomic so queries started on
	// other goroutines observe the commit (and everything the load wrote
	// before it) with a proper happens-before edge.
	loaded atomic.Bool
}

// Create parses the CREATE TABLE statements (with HIDDEN annotations and
// REFERENCES clauses forming a tree schema) and prepares an empty
// database. Load data with Loader before querying.
func Create(ddl []string, opts Options) (*DB, error) {
	var defs []schema.TableDef
	for _, stmt := range ddl {
		parsed, err := sqlparse.Parse(stmt)
		if err != nil {
			return nil, err
		}
		ct, ok := parsed.(sqlparse.CreateTable)
		if !ok {
			return nil, fmt.Errorf("ghostdb: Create expects CREATE TABLE statements, got %T", parsed)
		}
		defs = append(defs, ct.Def)
	}
	sch, err := schema.New(defs)
	if err != nil {
		return nil, err
	}
	inner, err := exec.NewDB(sch, opts.toExec())
	if err != nil {
		return nil, err
	}
	return &DB{sch: sch, inner: inner}, nil
}

// Schema renders the database schema as SQL.
func (db *DB) Schema() string { return db.sch.String() }

// Rows returns the cardinality of a table.
func (db *DB) Rows(table string) (int, error) {
	t, ok := db.sch.Lookup(table)
	if !ok {
		return 0, fmt.Errorf("ghostdb: unknown table %q", table)
	}
	return db.inner.Rows(t.Index), nil
}

// QueryOption customizes one QueryCtx call without touching the
// database-wide defaults, so concurrent callers cannot trample each
// other's knobs.
type QueryOption func(*exec.QueryConfig)

// WithStrategy forces the visible/hidden combination strategy for this
// query only (StrategyAuto restores planner choice).
func WithStrategy(s Strategy) QueryOption {
	return func(c *exec.QueryConfig) { c.Strategy = s }
}

// WithProjector selects the projection algorithm for this query only.
func WithProjector(p Projector) QueryOption {
	return func(c *exec.QueryConfig) { c.Projector = p }
}

// WithTrace attaches a span tree to this query: parse, resolve, plan,
// admission wait, token execution (with per-operator simulated costs
// summing to Stats.SimTime), cache lookups and scatter legs all record
// spans into tr. Read it back with tr.Snapshot or tr.JSON after the
// query returns. A nil tr is a no-op.
func WithTrace(tr *Trace) QueryOption {
	return func(c *exec.QueryConfig) { c.Trace = tr }
}

// WithRAMBuffers adjusts this query session's RAM admission request in
// whole buffers (flash pages): the session waits until at least
// max(min, the plan's derived floor) buffers of secure RAM are free,
// then owns up to want of them for the whole query. Smaller grants mean
// more operator passes, never wrong answers or mid-run failures — the
// floor the planner derived is always honored. Capping want below the
// full budget lets several sessions hold RAM at once. Zero values keep
// the plan's own request (its floor, and the whole budget as the
// elastic target).
func WithRAMBuffers(min, want int) QueryOption {
	return func(c *exec.QueryConfig) { c.MinBuffers, c.WantBuffers = min, want }
}

// Stmt is a prepared statement: the parsed, resolved and planned form of
// one SQL statement, carrying an inspectable Plan. Prepare once, inspect
// or Run many times; a Stmt is safe for concurrent Run calls.
//
// The plan is bound at Prepare time: per-table strategies come from the
// visible selectivities observed then, and the Plan's MinBuffers is the
// admission floor Run will request. Later inserts can drift the
// selectivities — answers stay exact under every strategy, only costs
// shift — so long-lived statements over fast-changing tables are worth
// re-preparing occasionally.
type Stmt struct {
	cfg   exec.QueryConfig
	inner *exec.Stmt
}

// Prepare parses, resolves and plans a statement without admitting or
// executing anything. It is the single planning path: Query and QueryCtx
// are prepare-then-run wrappers, so the plan you inspect here is exactly
// the plan they execute.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	if !db.loaded.Load() {
		return nil, errors.New("ghostdb: load data first (Loader / Commit)")
	}
	cfg := db.inner.DefaultConfig()
	inner, err := db.inner.Prepare(sql, cfg)
	if err != nil {
		return nil, err
	}
	return &Stmt{cfg: cfg, inner: inner}, nil
}

// Plan returns the statement's execution plan: per-table strategies,
// projector, the derived RAM footprint and an estimated cost.
func (s *Stmt) Plan() *Plan { return s.inner.Plan() }

// Explain renders the plan as text (what the shell prints for
// `EXPLAIN SELECT ...`).
func (s *Stmt) Explain() string { return s.inner.Plan().Explain() }

// Run executes the prepared statement as one admitted query session.
// Options that change the plan itself (WithStrategy, WithProjector)
// trigger a replan for that run only; WithRAMBuffers can raise the
// admission floor or cap the elastic want, but never push the grant
// below the plan's derived minimum.
func (s *Stmt) Run(ctx context.Context, opts ...QueryOption) (*Result, error) {
	cfg := s.cfg
	for _, o := range opts {
		o(&cfg)
	}
	return s.inner.RunCtx(ctx, cfg)
}

// Explain plans a statement and renders the plan without executing it.
func (db *DB) Explain(sql string) (string, error) {
	stmt, err := db.Prepare(sql)
	if err != nil {
		return "", err
	}
	return stmt.Explain(), nil
}

// Query executes a SELECT statement and returns rows plus cost stats.
// It is safe to call from multiple goroutines; each call becomes one
// scheduled session (see QueryCtx).
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryCtx(context.Background(), sql)
}

// QueryCtx executes a SELECT statement as one admitted query session
// (prepare-then-run: the statement is planned first, and admission
// requests the plan's true minimum RAM footprint). The call waits in a
// FIFO queue until the secure chip can grant that floor and a
// concurrency slot (Options.MaxConcurrentQueries); cancelling ctx while
// queued abandons the request without it ever having held memory. Once
// running, the query executes to completion with exclusive use of the
// simulated token, so its Stats are deterministic regardless of
// concurrency.
func (db *DB) QueryCtx(ctx context.Context, sql string, opts ...QueryOption) (*Result, error) {
	if !db.loaded.Load() {
		return nil, errors.New("ghostdb: load data first (Loader / Commit)")
	}
	cfg := db.inner.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return db.inner.RunCtx(ctx, sql, cfg)
}

// Exec executes a non-SELECT statement: INSERT, UPDATE or DELETE.
// UPDATE and DELETE commit through the secure token's hidden delta log
// (tombstones and upserted row images); every committed write
// invalidates the cached results of its shard, so no later query can
// observe a pre-write cached answer. UPDATEs that assign visible
// columns while filtering on hidden ones are rejected — the matched
// visible rows would reveal which hidden values satisfied the
// predicate.
func (db *DB) Exec(sql string) error {
	return db.ExecCtx(context.Background(), sql)
}

// ExecCtx is Exec with cancellation: cancelling ctx while the statement
// is queued for admission abandons it without it having run.
func (db *DB) ExecCtx(ctx context.Context, sql string) error {
	if !db.loaded.Load() {
		return errors.New("ghostdb: load data first (Loader / Commit)")
	}
	_, err := db.inner.RunCtx(ctx, sql, db.inner.DefaultConfig())
	return err
}

// Compact synchronously folds every token's accumulated delta log into
// fresh base images and index structures. It acquires a normal
// scheduled session per token — on the bus it is indistinguishable from
// query work — and leaves query answers unchanged, so the result cache
// survives the swap. Background compaction triggers automatically when
// a token's delta depth crosses Options.CompactThreshold; this is the
// explicit handle (the shell's \compact).
func (db *DB) Compact(ctx context.Context) error {
	if !db.loaded.Load() {
		return errors.New("ghostdb: load data first (Loader / Commit)")
	}
	return db.inner.Compact(ctx)
}

// DeltaStats reports one secure token's write-path counters.
type DeltaStats = exec.DeltaStats

// ShardDeltaStats reports each token's delta-log depth, committed DML
// statement count and completed compactions, in shard order. The
// values are declassified mirrors maintained at commit and compaction
// time — reading them never touches hidden state.
func (db *DB) ShardDeltaStats() []DeltaStats { return db.inner.TokenDeltaStats() }

// ForceStrategy overrides the planner default for experiments; pass
// StrategyAuto to restore normal planning. It only affects queries
// submitted afterwards — running queries keep the config they
// snapshotted.
//
// Deprecated: a DB-wide mutable knob cannot be reasoned about under
// concurrent sessions and bypasses the inspectable plan. Use the
// per-query WithStrategy option, or Prepare a Stmt and check its Plan.
func (db *DB) ForceStrategy(s Strategy) { db.inner.SetForceStrategy(s) }

// SetProjector selects the default projection algorithm.
//
// Deprecated: same reasoning as ForceStrategy — use the per-query
// WithProjector option, or Prepare a Stmt and check its Plan.
func (db *DB) SetProjector(p Projector) { db.inner.SetProjector(p) }

// SetThroughput changes the modeled USB link speed in MB/s. Safe under
// concurrent sessions: each query session snapshots the speed when it
// starts executing, so the change applies to sessions started after the
// call and never skews a running query's reported CommTime. When the
// speed is fixed for the whole run, prefer Options.ThroughputMBps.
func (db *DB) SetThroughput(mbps float64) { db.inner.SetThroughput(mbps) }

// Totals reports the cumulative simulated cost of all completed queries.
func (db *DB) Totals() exec.Totals { return db.inner.Totals() }

// Shards returns the number of secure tokens the database runs on.
func (db *DB) Shards() int { return db.inner.Placement().Shards() }

// ShardOf returns the shard ordinal holding a table.
func (db *DB) ShardOf(table string) (int, error) {
	t, ok := db.sch.Lookup(table)
	if !ok {
		return 0, fmt.Errorf("ghostdb: unknown table %q", table)
	}
	return db.inner.Placement().Of(t.Index), nil
}

// ShardTotals reports each secure token's cumulative session costs, in
// shard order. Summed across shards, the flash and bus counters equal
// what an unsharded engine reports for the same executed work — sharding
// spreads secure-side work, it never adds any.
func (db *DB) ShardTotals() []exec.Totals { return db.inner.TokenTotals() }

// DescribePlacement renders the table→shard placement for humans.
func (db *DB) DescribePlacement() string {
	return db.inner.Placement().Describe(db.sch)
}

// CacheStats snapshots the result cache's counters: entries, bytes,
// hits, singleflight-shared answers, evictions and invalidations. The
// zero value is returned when Options.ResultCacheBytes left the cache
// disabled.
func (db *DB) CacheStats() CacheStats { return db.inner.CacheStats() }

// PageCacheStats reports the page cache's counters (db.PageCacheStats).
type PageCacheStats = pagecache.Stats

// PageCacheStats snapshots the page cache's counters: frames, bytes,
// hits, misses, evictions and invalidations. The zero value is returned
// when Options.PageCacheBytes left the cache disabled.
func (db *DB) PageCacheStats() PageCacheStats { return db.inner.PageCacheStats() }

// Metrics returns the engine's metric registry. It is always collecting
// (a few atomic adds per query); render it with WritePrometheus when the
// process opts into exposure.
func (db *DB) Metrics() *Metrics { return db.inner.Metrics() }

// SlowLog returns the slow-query log, or nil when
// Options.SlowQueryThreshold left it disabled.
func (db *DB) SlowLog() *SlowLog { return db.inner.SlowLog() }

// SLOSnapshot is the live SLO observatory's view: rolling attainment
// and latency quantiles over the last minute of client-level wall
// latency, plus per-shard queue depth, running sessions and shed
// counts.
type SLOSnapshot = exec.SLOSnapshot

// SLOShard is one shard's admission-side state in an SLOSnapshot.
type SLOShard = exec.SLOShard

// SLO snapshots the rolling SLO window — the same numbers the /slo
// endpoint serves and the ghostdb_slo_* gauges expose.
func (db *DB) SLO() SLOSnapshot { return db.inner.SLO() }

// Internal returns the underlying engine, for the benchmark harness and
// tools living inside this module.
func (db *DB) Internal() *exec.DB { return db.inner }
