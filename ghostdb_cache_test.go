package ghostdb

import (
	"fmt"
	"sync"
	"testing"
)

// cacheTestDB builds the Orders/Customers database with the result
// cache enabled (cacheBytes) or disabled (0).
func cacheTestDB(t *testing.T, nCustomers, nOrders, cacheBytes int) *DB {
	t.Helper()
	db, err := Create([]string{
		`CREATE TABLE Orders (id int, customer_id int REFERENCES Customers HIDDEN,
		   quarter char(7), amount float HIDDEN)`,
		`CREATE TABLE Customers (id int, company char(30) HIDDEN, region char(20))`,
	}, Options{FlashBlocks: 4096, MaxConcurrentQueries: 8, ResultCacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	ld := db.Loader()
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < nCustomers; i++ {
		if err := ld.Append("Customers", R{"company": fmt.Sprintf("corp-%02d", i), "region": regions[i%4]}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nOrders; i++ {
		if err := ld.Append("Orders", R{"customer_id": i % nCustomers, "quarter": fmt.Sprintf("2006-Q%d", i%4+1), "amount": float64(i % 250)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

func sameRows(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) || len(a.Columns) != len(b.Columns) {
		return false
	}
	for ri := range a.Rows {
		for ci := range a.Rows[ri] {
			if !a.Rows[ri][ci].Equal(b.Rows[ri][ci]) {
				return false
			}
		}
	}
	return true
}

var cachePoolQueries = []string{
	`SELECT Orders.id, Customers.company FROM Orders, Customers
	   WHERE Orders.customer_id = Customers.id AND Customers.region = 'north' AND Orders.amount >= 200.0`,
	`SELECT Orders.id, Orders.amount FROM Orders, Customers
	   WHERE Orders.customer_id = Customers.id AND Customers.company < 'corp-10' AND Orders.quarter = '2006-Q1'`,
	`SELECT id, region FROM Customers WHERE region = 'south'`,
	`SELECT COUNT(*) FROM Orders, Customers WHERE Orders.customer_id = Customers.id AND Orders.amount < 50.0 AND Customers.region = 'east'`,
}

// TestCachePublicSequentialInvalidation: the INSERT-then-query contract
// through the public API — a post-insert query never sees a cached
// pre-insert answer.
func TestCachePublicSequentialInvalidation(t *testing.T) {
	db := cacheTestDB(t, 30, 300, 1<<20)
	sql := `SELECT id, region FROM Customers WHERE region = 'north'`
	first, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.CacheHit || !sameRows(first, warm) {
		t.Fatalf("warm query: hit=%v rows-match=%v", warm.Stats.CacheHit, sameRows(first, warm))
	}
	if err := db.Exec(`INSERT INTO Customers (company, region) VALUES ('corp-xx', 'north')`); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.CacheHit || after.Stats.CacheShared {
		t.Fatal("post-insert query was served from the stale cache")
	}
	if len(after.Rows) != len(first.Rows)+1 {
		t.Fatalf("post-insert rows = %d, want %d", len(after.Rows), len(first.Rows)+1)
	}
}

// TestCacheConcurrentInsertsMatchUncachedEngine is the invalidation
// property test: rounds of concurrent INSERTs and repeated queries hit
// one cached DB, while an identical *uncached* DB receives the same
// inserts in the same per-table order. After every round the two
// engines must agree exactly on every pool query — if invalidation ever
// let a stale entry survive, the cached DB's answer would diverge. Run
// under -race in CI, this is also the data-race check for the whole
// cache/invalidate/singleflight path.
func TestCacheConcurrentInsertsMatchUncachedEngine(t *testing.T) {
	const (
		nCustomers      = 30
		nOrders         = 300
		rounds          = 4
		queryWorkers    = 6
		insertsPerRound = 5
	)
	cached := cacheTestDB(t, nCustomers, nOrders, 1<<20)
	uncached := cacheTestDB(t, nCustomers, nOrders, 0)

	regions := []string{"north", "south", "east", "west"}
	customerIns := func(round, i int) string {
		return fmt.Sprintf(`INSERT INTO Customers (company, region) VALUES ('corp-r%d-%d', '%s')`,
			round, i, regions[(round+i)%4])
	}
	orderIns := func(round, i int) string {
		// Reference only the initially loaded customers so the insert is
		// valid regardless of interleaving with the Customers inserter.
		return fmt.Sprintf(`INSERT INTO Orders (customer_id, quarter, amount) VALUES (%d, '2006-Q%d', %d.0)`,
			(round*7+i)%nCustomers, (round+i)%4+1, 190+((round*13+i*29)%60))
	}

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		// One inserter per table keeps each table's insertion order
		// deterministic, so the mirror can replay it exactly.
		for _, mk := range []func(int, int) string{customerIns, orderIns} {
			mk := mk
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < insertsPerRound; i++ {
					if err := cached.Exec(mk(round, i)); err != nil {
						t.Errorf("round %d insert: %v", round, err)
						return
					}
				}
			}()
		}
		// Query workers hammer the pool concurrently with the inserts.
		for w := 0; w < queryWorkers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 8; k++ {
					sql := cachePoolQueries[(w+k)%len(cachePoolQueries)]
					res, err := cached.Query(sql)
					if err != nil {
						t.Errorf("round %d worker %d: %v", round, w, err)
						return
					}
					if s := res.Stats; (s.CacheHit || s.CacheShared) &&
						(s.BusUp != 0 || s.BusDown != 0 || s.Flash.PageReads != 0 || s.Flash.PageWrites != 0) {
						t.Errorf("round %d worker %d: cached answer with token traffic: %+v", round, w, s)
						return
					}
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}

		// Replay the round's inserts on the uncached mirror, same
		// per-table order.
		for i := 0; i < insertsPerRound; i++ {
			if err := uncached.Exec(customerIns(round, i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < insertsPerRound; i++ {
			if err := uncached.Exec(orderIns(round, i)); err != nil {
				t.Fatal(err)
			}
		}

		// Quiesced: every pool query must agree exactly between the
		// cached engine and the uncached one — twice on the cached side,
		// so both the recomputed answer and its re-cached copy are
		// checked against the reference.
		for qi, sql := range cachePoolQueries {
			want, err := uncached.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := cached.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRows(want, fresh) {
				t.Fatalf("round %d q%d: cached engine diverged from uncached engine (%d vs %d rows)",
					round, qi, len(fresh.Rows), len(want.Rows))
			}
			again, err := cached.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			if !again.Stats.CacheHit && !again.Stats.CacheShared {
				t.Fatalf("round %d q%d: quiesced repeat did not hit", round, qi)
			}
			if !sameRows(want, again) {
				t.Fatalf("round %d q%d: cached copy diverged from uncached engine", round, qi)
			}
		}
	}

	cs := cached.CacheStats()
	if cs.Hits+cs.SharedHits == 0 {
		t.Fatal("property test never exercised a cache hit")
	}
	if cs.Invalidations == 0 {
		t.Fatal("property test never exercised invalidation")
	}
	if got := cached.Internal().RAM.InUse(); got != 0 {
		t.Fatalf("secure RAM still in use after drain: %d", got)
	}
}
